package bench

import (
	"math"

	"spd3/internal/mem"
	"spd3/internal/task"
)

// RacyBenchmark is a deliberately racy (from SPD3's standpoint) program
// preserved from the paper's anecdotes; SPD3 is expected to report on it.
type RacyBenchmark struct {
	Name string
	Desc string
	// NeedsParallel marks variants using blocking barriers, which the
	// sequential executor cannot run.
	NeedsParallel bool
	Run           func(rt *task.Runtime, in Input) (float64, error)
}

// Racy returns the deliberately racy programs.
func Racy() []*RacyBenchmark {
	return []*RacyBenchmark{
		{
			Name: "RacyMonteCarlo",
			Desc: "benign race: parallel tasks repeatedly assign the same value (§6.1)",
			Run:  runRacyMonteCarlo,
		},
		{
			Name: "BuggyBarrier",
			Desc: "JGF-style hand-rolled barrier via unsynchronized flag array (§6.3)",
			Run:  runBuggyBarrier,
		},
		{
			Name:          "BarrierSOR",
			Desc:          "original JGF shape: persistent tasks + real barriers; race-free for FastTrack+barrier events, reported by SPD3 (§6.3)",
			NeedsParallel: true,
			Run:           runBarrierSOR,
		},
	}
}

// runRacyMonteCarlo reproduces the benign race the paper found in the
// async/finish MonteCarlo rewrite (§6.1): every path task redundantly
// assigns the same initialization value to a shared location. The value
// is schedule-independent — the race is benign — but SPD3, being precise,
// must still report it: two parallel writes are two parallel writes.
func runRacyMonteCarlo(rt *task.Runtime, in Input) (float64, error) {
	paths := in.scaled(64, 8)
	pathLen := 16
	results := mem.NewArray[float64](rt, "racymc.results", paths)
	// The shared location every task redundantly initializes.
	initialized := mem.NewVar(rt, "racymc.init", 0.0)

	err := rt.Run(func(c *task.Ctx) {
		c.ParallelFor(0, paths, in.grain(c, paths), func(c *task.Ctx, p int) {
			initialized.Set(c, 1.0) // same value, every task: benign WW race
			r := newRNG(uint64(p) + 1)
			logS := math.Log(100.0)
			for s := 0; s < pathLen; s++ {
				logS += 0.001 + 0.01*r.gaussian()
			}
			results.Set(c, p, math.Exp(logS))
		})
	})
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, v := range results.Unchecked() {
		sum += v
	}
	return sum, nil
}

// runBarrierSOR is the original JGF SOR shape before the paper's rewrite
// (§6.3): a fixed set of persistent tasks sweeps the grid, separated by
// *correct* barriers instead of finish scopes. The program is genuinely
// race-free — FastTrack with barrier events certifies it — but barriers
// lie outside the async/finish model, so SPD3 reports the cross-phase
// sharing; the paper handled this by converting such programs to finish
// form (our SOR benchmark). Requires a parallel executor with at least 4
// pool workers.
func runBarrierSOR(rt *task.Runtime, in Input) (float64, error) {
	const parts = 4
	n := in.scaled(32, 8)
	if n%parts != 0 {
		n += parts - n%parts
	}
	iters := in.scaled(6, 2)
	const omega = 1.25
	g := mem.NewMatrix[float64](rt, "barriersor.G", n, n)
	r := newRNG(7)
	raw := g.Unchecked()
	for i := range raw {
		raw[i] = r.float64() * 1e-5
	}

	bar := rt.NewBarrier(parts)
	rows := n / parts
	err := rt.Run(func(c *task.Ctx) {
		c.FinishAsync(parts, func(c *task.Ctx, id int) {
			lo, hi := id*rows, (id+1)*rows
			if lo == 0 {
				lo = 1
			}
			if hi == n {
				hi = n - 1
			}
			for it := 0; it < iters; it++ {
				for color := 0; color < 2; color++ {
					for i := lo; i < hi; i++ {
						for j := 1 + (i+color)%2; j < n-1; j += 2 {
							v := omega/4*(g.Get(c, i-1, j)+g.Get(c, i+1, j)+
								g.Get(c, i, j-1)+g.Get(c, i, j+1)) +
								(1-omega)*g.Get(c, i, j)
							g.Set(c, i, j, v)
						}
					}
					bar.Await(c) // sweep barrier instead of a finish
				}
			}
		})
	})
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, v := range g.Unchecked() {
		sum += v
	}
	return sum, nil
}

// runBuggyBarrier reproduces the access pattern of the hand-rolled JGF
// barriers (§6.3): each "phase participant" sets its own slot of a shared
// flag array and then reads every other participant's slot — with no
// synchronization, exactly the unsynchronized spin-loop reads that made
// LUFact, MolDyn, RayTracer, and SOR racy in their original form. (The
// spin itself is elided: under a race detector one iteration of the
// polling loop already exhibits the racy accesses, and an actual spin
// would not terminate under depth-first execution.)
func runBuggyBarrier(rt *task.Runtime, in Input) (float64, error) {
	n := in.scaled(8, 4)
	flags := mem.NewArray[int](rt, "barrier.flags", n)

	err := rt.Run(func(c *task.Ctx) {
		c.ParallelFor(0, n, in.grain(c, n), func(c *task.Ctx, i int) {
			flags.Set(c, i, 1) // announce arrival
			seen := 0
			for j := 0; j < n; j++ { // poll the others: write-read races
				seen += flags.Get(c, j)
			}
			_ = seen
		})
	})
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, v := range flags.Unchecked() {
		sum += float64(v)
	}
	return sum, nil
}
