package bench

import (
	"math"
	"testing"

	"spd3/internal/core"
	"spd3/internal/detect"
	"spd3/internal/espbags"
	"spd3/internal/fasttrack"
	"spd3/internal/task"
)

// tiny is the input used throughout the tests: small enough that the full
// suite × detector matrix stays fast.
var tiny = Input{Scale: 0.12}

func runUnder(t *testing.T, b *Benchmark, in Input, cfg task.Config) (float64, []detect.Race) {
	t.Helper()
	sink := detect.NewSink(false, 0)
	if cfg.Detector == nil {
		cfg.Detector = core.New(sink, core.SyncCAS)
	}
	rt, err := task.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := b.Run(rt, in)
	if err != nil {
		t.Fatalf("%s: %v", b.Name, err)
	}
	return sum, sink.Races()
}

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 15 {
		t.Fatalf("suite has %d benchmarks, want the paper's 15", len(all))
	}
	want := []string{"Series", "LUFact", "SOR", "Crypt", "Sparse", "MolDyn",
		"MonteCarlo", "RayTracer", "FFT", "Health", "NQueens", "Strassen",
		"Fannkuch", "Mandelbrot", "Matmul"}
	for i, b := range all {
		if b.Name != want[i] {
			t.Errorf("position %d: %s, want %s", i, b.Name, want[i])
		}
	}
	if got := len(JGF()); got != 8 {
		t.Errorf("JGF subset has %d entries, want 8", got)
	}
	if _, err := ByName("Crypt"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("NoSuch"); err == nil {
		t.Error("ByName must fail for unknown benchmarks")
	}
}

// TestAllRaceFreeUnderSPD3 is the §6.1 headline property: after the
// paper's fixes, all 15 benchmarks are data-race-free, and SPD3 certifies
// it for every input (one quiet run certifies all schedules).
func TestAllRaceFreeUnderSPD3(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			for _, chunked := range []bool{false, true} {
				in := tiny
				in.Chunked = chunked
				sink := detect.NewSink(false, 0)
				rt, err := task.New(task.Config{
					Executor: task.Pool, Workers: 4,
					Detector: core.New(sink, core.SyncCAS),
				})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := b.Run(rt, in); err != nil {
					t.Fatal(err)
				}
				if races := sink.Races(); len(races) != 0 {
					t.Fatalf("chunked=%v: races on a race-free benchmark: %v",
						chunked, races[:min(3, len(races))])
				}
			}
		})
	}
}

// TestChecksumsAgreeAcrossExecutorsAndDetectors: every benchmark must
// compute the same answer whatever the executor, worker count, detector,
// and chunking — the strongest end-to-end determinism check we have.
func TestChecksumsAgreeAcrossExecutorsAndDetectors(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			ref, _ := runUnder(t, b, tiny, task.Config{Executor: task.Sequential,
				Detector: detect.Nop{}})
			check := func(label string, got float64) {
				if math.Abs(got-ref) > 1e-6*(1+math.Abs(ref)) {
					t.Errorf("%s: checksum %g, want %g", label, got, ref)
				}
			}
			got, _ := runUnder(t, b, tiny, task.Config{Executor: task.Pool, Workers: 4})
			check("pool-4/spd3", got)
			got, _ = runUnder(t, b, Input{Scale: tiny.Scale, Chunked: true},
				task.Config{Executor: task.Pool, Workers: 4})
			check("pool-4/spd3/chunked", got)
			got, _ = runUnder(t, b, tiny, task.Config{Executor: task.Goroutines})
			check("goroutines/spd3", got)
			sink := detect.NewSink(false, 0)
			got, _ = runUnder(t, b, tiny, task.Config{Executor: task.Sequential,
				Detector: espbags.New(sink)})
			check("sequential/espbags", got)
		})
	}
}

// TestKnownValues pins benchmark kernels against independently known
// results.
func TestKnownValues(t *testing.T) {
	// NQueens: scale n/9 selects board size n (default dimension 9).
	nq, err := ByName("NQueens")
	if err != nil {
		t.Fatal(err)
	}
	solutions := map[int]float64{5: 10, 6: 4, 7: 40, 8: 92, 9: 352}
	for n, want := range solutions {
		in := Input{Scale: float64(n) / 9.0}
		rt, _ := task.New(task.Config{Executor: task.Sequential})
		got, err := nq.Run(rt, in)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("NQueens(%d) = %v, want %v", n, got, want)
		}
	}

	// Fannkuch: known maxima — fannkuch(7)=16, fannkuch(8)=22.
	fk, err := ByName("Fannkuch")
	if err != nil {
		t.Fatal(err)
	}
	for k, want := range map[int]float64{7: 16, 8: 22} {
		in := Input{Scale: float64(k) / 8.0}
		rt, _ := task.New(task.Config{Executor: task.Sequential})
		got, err := fk.Run(rt, in)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("Fannkuch(%d) = %v, want %v", k, got, want)
		}
	}
}

// TestSelfValidatingKernels runs the benchmarks whose Run performs an
// internal correctness check (Crypt round trip, LUFact residual, FFT
// round trip, Strassen vs naive) at a larger size to exercise the check.
func TestSelfValidatingKernels(t *testing.T) {
	for _, name := range []string{"Crypt", "LUFact", "FFT", "Strassen"} {
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		rt, _ := task.New(task.Config{Executor: task.Pool, Workers: 4})
		if _, err := b.Run(rt, Input{Scale: 0.5}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestIDEAPrimitives checks the cipher algebra directly.
func TestIDEAPrimitives(t *testing.T) {
	// Multiplication in GF(2^16+1): spot values.
	if got := ideaMul(3, 4); got != 12 {
		t.Errorf("3*4 = %d", got)
	}
	// 0 denotes 2^16 = -1 mod 65537: (-1)*(-1) = 1.
	if got := ideaMul(0, 0); got != 1 {
		t.Errorf("0*0 = %d, want 1", got)
	}
	// Inverses: x * inv(x) == 1 for a sample of x.
	for _, x := range []uint16{1, 2, 3, 1000, 54321, 65535, 0} {
		inv := ideaMulInv(x)
		if got := ideaMul(x, inv); got != 1 {
			t.Errorf("x=%d: x*inv(x) = %d, want 1", x, got)
		}
	}
}

// TestRacyVariantsReport: the deliberately racy programs must be flagged
// by SPD3 (the benign MonteCarlo race of §6.1, the buggy JGF barrier of
// §6.3, and the barrier-phased original program shape).
func TestRacyVariantsReport(t *testing.T) {
	for _, rb := range Racy() {
		rb := rb
		t.Run(rb.Name, func(t *testing.T) {
			execs := []task.ExecKind{task.Sequential, task.Pool}
			if rb.NeedsParallel {
				execs = []task.ExecKind{task.Pool, task.Goroutines}
			}
			for _, exec := range execs {
				sink := detect.NewSink(false, 0)
				rt, err := task.New(task.Config{Executor: exec, Workers: 4,
					Detector: core.New(sink, core.SyncCAS)})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := rb.Run(rt, Input{Scale: 1}); err != nil {
					t.Fatal(err)
				}
				if sink.Empty() {
					t.Errorf("%v: no race reported on racy program", exec)
				}
			}
		})
	}
}

// TestBarrierSORQuietUnderFastTrack completes the §6.3 story: the same
// barrier-phased program SPD3 reports is certified race-free by
// FastTrack, which consumes the barrier events (RoadRunner's default
// behaviour in the paper).
func TestBarrierSORQuietUnderFastTrack(t *testing.T) {
	var bsor *RacyBenchmark
	for _, rb := range Racy() {
		if rb.Name == "BarrierSOR" {
			bsor = rb
		}
	}
	if bsor == nil {
		t.Fatal("BarrierSOR variant missing")
	}
	sink := detect.NewSink(false, 0)
	rt, err := task.New(task.Config{Executor: task.Pool, Workers: 4,
		Detector: fasttrack.New(sink)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bsor.Run(rt, Input{Scale: 1}); err != nil {
		t.Fatal(err)
	}
	if races := sink.Races(); len(races) != 0 {
		t.Fatalf("FastTrack with barrier events reported: %v", races[:min(3, len(races))])
	}

	// And the checksum matches the finish-based SOR rewrite on the
	// same grid: the two programs compute the same thing.
	base, err := task.New(task.Config{Executor: task.Pool, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	sum1, err := bsor.Run(base, Input{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sum1 == 0 {
		t.Fatal("suspicious zero checksum")
	}
}

// TestMonteCarloBenignRaceKind: the §6.1 benign race is a write-write on
// the redundantly initialized location.
func TestMonteCarloBenignRace(t *testing.T) {
	sink := detect.NewSink(false, 0)
	rt, err := task.New(task.Config{Executor: task.Sequential,
		Detector: core.New(sink, core.SyncCAS)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Racy()[0].Run(rt, Input{Scale: 1}); err != nil {
		t.Fatal(err)
	}
	races := sink.Races()
	if len(races) == 0 {
		t.Fatal("benign race not reported")
	}
	for _, r := range races {
		if r.Region != "racymc.init" || r.Kind != detect.WriteWrite {
			t.Errorf("unexpected race %v", r)
		}
	}
}

// TestBuggyBarrierRace: the barrier flags race as write-read/read-write.
func TestBuggyBarrierRace(t *testing.T) {
	sink := detect.NewSink(false, 0)
	rt, err := task.New(task.Config{Executor: task.Sequential,
		Detector: core.New(sink, core.SyncCAS)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Racy()[1].Run(rt, Input{Scale: 1}); err != nil {
		t.Fatal(err)
	}
	races := sink.Races()
	if len(races) == 0 {
		t.Fatal("buggy barrier not reported")
	}
	for _, r := range races {
		if r.Region != "barrier.flags" {
			t.Errorf("unexpected region %v", r)
		}
		if r.Kind == detect.WriteWrite {
			t.Errorf("barrier flags should race read-vs-write, got %v", r)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
