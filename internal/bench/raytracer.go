package bench

import (
	"math"

	"spd3/internal/mem"
	"spd3/internal/task"
)

func init() {
	register(&Benchmark{
		Name:   "RayTracer",
		Source: "JGF §3",
		Desc:   "3D ray tracer",
		Args:   "(B)",
		JGF:    true,
		Run:    runRayTracer,
	})
}

// sphereFields is the flattened per-sphere record in the scene array:
// center (3), radius, diffuse reflectance.
const sphereFields = 5

// runRayTracer renders a sphere scene with one task per scanline: primary
// ray, nearest-sphere intersection, Lambertian shading, and a shadow ray
// toward a point light. The whole scene array is read-shared by every
// pixel — the pattern behind RayTracer's high FastTrack/Eraser memory in
// Table 3.
func runRayTracer(rt *task.Runtime, in Input) (float64, error) {
	side := in.scaled(64, 8)
	const nSpheres = 8
	scene := mem.NewArray[float64](rt, "ray.scene", nSpheres*sphereFields)
	img := mem.NewMatrix[float64](rt, "ray.img", side, side)

	r := newRNG(73)
	sr := scene.Unchecked()
	for s := 0; s < nSpheres; s++ {
		sr[s*sphereFields+0] = 8 * (r.float64() - 0.5) // cx
		sr[s*sphereFields+1] = 8 * (r.float64() - 0.5) // cy
		sr[s*sphereFields+2] = 6 + 6*r.float64()       // cz
		sr[s*sphereFields+3] = 0.5 + r.float64()       // radius
		sr[s*sphereFields+4] = 0.3 + 0.7*r.float64()   // reflectance
	}
	light := [3]float64{-5, 8, 0}

	err := rt.Run(func(c *task.Ctx) {
		c.ParallelFor(0, side, in.grain(c, side), func(c *task.Ctx, y int) {
			for x := 0; x < side; x++ {
				// Perspective ray through the pixel.
				dir := norm3([3]float64{
					(float64(x)/float64(side) - 0.5) * 2,
					(float64(y)/float64(side) - 0.5) * 2,
					1,
				})
				img.Set(c, y, x, trace(c, scene, [3]float64{0, 0, 0}, dir, light))
			}
		})
	})
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, v := range img.Unchecked() {
		sum += v
	}
	return sum, nil
}

// trace returns the luminance for one primary ray.
func trace(c *task.Ctx, scene *mem.Array[float64], org, dir, light [3]float64) float64 {
	t, s := intersect(c, scene, org, dir, -1)
	if s < 0 {
		return 0 // background
	}
	hit := [3]float64{org[0] + t*dir[0], org[1] + t*dir[1], org[2] + t*dir[2]}
	center := [3]float64{
		scene.Get(c, s*sphereFields+0),
		scene.Get(c, s*sphereFields+1),
		scene.Get(c, s*sphereFields+2),
	}
	n := norm3(sub3(hit, center))
	l := norm3(sub3(light, hit))
	lambert := n[0]*l[0] + n[1]*l[1] + n[2]*l[2]
	if lambert <= 0 {
		return 0.05 // ambient
	}
	// Shadow ray: any occluder between hit point and the light?
	if _, occ := intersect(c, scene, hit, l, s); occ >= 0 {
		return 0.05
	}
	return 0.05 + lambert*scene.Get(c, s*sphereFields+4)
}

// intersect returns the nearest positive hit (t, sphere index) of the
// ray, skipping sphere `skip`; (0, -1) if none.
func intersect(c *task.Ctx, scene *mem.Array[float64], org, dir [3]float64, skip int) (float64, int) {
	bestT, bestS := math.MaxFloat64, -1
	n := scene.Len() / sphereFields
	for s := 0; s < n; s++ {
		if s == skip {
			continue
		}
		oc := [3]float64{
			org[0] - scene.Get(c, s*sphereFields+0),
			org[1] - scene.Get(c, s*sphereFields+1),
			org[2] - scene.Get(c, s*sphereFields+2),
		}
		rad := scene.Get(c, s*sphereFields+3)
		b := oc[0]*dir[0] + oc[1]*dir[1] + oc[2]*dir[2]
		cc := oc[0]*oc[0] + oc[1]*oc[1] + oc[2]*oc[2] - rad*rad
		disc := b*b - cc
		if disc < 0 {
			continue
		}
		t := -b - math.Sqrt(disc)
		if t > 1e-6 && t < bestT {
			bestT, bestS = t, s
		}
	}
	if bestS < 0 {
		return 0, -1
	}
	return bestT, bestS
}

func sub3(a, b [3]float64) [3]float64 {
	return [3]float64{a[0] - b[0], a[1] - b[1], a[2] - b[2]}
}

func norm3(v [3]float64) [3]float64 {
	m := math.Sqrt(v[0]*v[0] + v[1]*v[1] + v[2]*v[2])
	if m == 0 {
		return v
	}
	return [3]float64{v[0] / m, v[1] / m, v[2] / m}
}
