package bench

import (
	"fmt"
	"math"

	"spd3/internal/mem"
	"spd3/internal/task"
)

func init() {
	register(&Benchmark{
		Name:   "Strassen",
		Source: "BOTS",
		Desc:   "Matrix multiply with Strassen's method",
		Args:   "(large)",
		Run:    runStrassen,
	})
}

// mview is a square sub-matrix view into an instrumented matrix; all
// element accesses stay monitored.
type mview struct {
	m      *mem.Matrix[float64]
	r0, c0 int
	n      int
}

func (v mview) get(c *task.Ctx, i, j int) float64    { return v.m.Get(c, v.r0+i, v.c0+j) }
func (v mview) set(c *task.Ctx, i, j int, x float64) { v.m.Set(c, v.r0+i, v.c0+j, x) }

// quad returns quadrant (qi, qj) of the view.
func (v mview) quad(qi, qj int) mview {
	h := v.n / 2
	return mview{m: v.m, r0: v.r0 + qi*h, c0: v.c0 + qj*h, n: h}
}

// runStrassen multiplies two n×n matrices with Strassen's recursion,
// spawning the seven half-size products as parallel tasks (the BOTS
// task-recursive shape), and validates against a naive multiply of the
// same data.
func runStrassen(rt *task.Runtime, in Input) (float64, error) {
	n := 16
	for n < in.scaled(64, 16) {
		n <<= 1
	}
	const cutoff = 16

	a := mem.NewMatrix[float64](rt, "strassen.A", n, n)
	b := mem.NewMatrix[float64](rt, "strassen.B", n, n)
	cm := mem.NewMatrix[float64](rt, "strassen.C", n, n)

	r := newRNG(83)
	for i, raw := 0, a.Unchecked(); i < len(raw); i++ {
		raw[i] = r.float64() - 0.5
	}
	for i, raw := 0, b.Unchecked(); i < len(raw); i++ {
		raw[i] = r.float64() - 0.5
	}

	err := rt.Run(func(c *task.Ctx) {
		strassenMul(c, mview{a, 0, 0, n}, mview{b, 0, 0, n}, mview{cm, 0, 0, n}, cutoff)
	})
	if err != nil {
		return 0, err
	}

	// Validate against the naive product on the raw data.
	ar, br, cr := a.Unchecked(), b.Unchecked(), cm.Unchecked()
	worst, sum := 0.0, 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += ar[i*n+k] * br[k*n+j]
			}
			if d := math.Abs(s - cr[i*n+j]); d > worst {
				worst = d
			}
			sum += cr[i*n+j]
		}
	}
	if worst > 1e-8 {
		return 0, fmt.Errorf("strassen: max deviation %g from naive product", worst)
	}
	return sum, nil
}

// strassenMul computes C = A·B. Below the cutoff it multiplies naively;
// above it, it spawns the seven Strassen products as asyncs inside a
// finish — each product task allocates and fills its own operand
// temporaries, so within the finish all writes are disjoint — and then
// combines the quadrants.
func strassenMul(c *task.Ctx, a, b, out mview, cutoff int) {
	n := a.n
	if n <= cutoff {
		naiveMul(c, a, b, out)
		return
	}
	h := n / 2
	rt := c.Runtime()
	// Seven product temporaries, written by the product tasks and read
	// by the combine phase after the finish.
	p := make([]mview, 7)
	for i := range p {
		p[i] = mview{m: mem.NewMatrix[float64](rt, fmt.Sprintf("strassen.P%d", i+1), h, h), n: h}
	}
	a11, a12, a21, a22 := a.quad(0, 0), a.quad(0, 1), a.quad(1, 0), a.quad(1, 1)
	b11, b12, b21, b22 := b.quad(0, 0), b.quad(0, 1), b.quad(1, 0), b.quad(1, 1)

	// Each entry describes one Strassen product: the operand
	// combinations (nil second operand means "single quadrant").
	type operands struct {
		al, ar *mview // A-side: al (+/- ar)
		bl, br *mview // B-side
		asub   bool
		bsub   bool
	}
	spec := []operands{
		{al: &a11, ar: &a22, bl: &b11, br: &b22},             // P1 = (A11+A22)(B11+B22)
		{al: &a21, ar: &a22, bl: &b11},                       // P2 = (A21+A22)B11
		{al: &a11, bl: &b12, br: &b22, bsub: true},           // P3 = A11(B12-B22)
		{al: &a22, bl: &b21, br: &b11, bsub: true},           // P4 = A22(B21-B11)
		{al: &a11, ar: &a12, bl: &b22},                       // P5 = (A11+A12)B22
		{al: &a21, ar: &a11, asub: true, bl: &b11, br: &b12}, // P6 = (A21-A11)(B11+B12)
		{al: &a12, ar: &a22, asub: true, bl: &b21, br: &b22}, // P7 = (A12-A22)(B21+B22)
	}
	c.Finish(func(c *task.Ctx) {
		for i := range spec {
			i := i
			s := spec[i]
			c.Async(func(c *task.Ctx) {
				rt := c.Runtime()
				left := combineOperand(c, rt, s.al, s.ar, s.asub, h, i, "L")
				right := combineOperand(c, rt, s.bl, s.br, s.bsub, h, i, "R")
				strassenMul(c, left, right, p[i], cutoff)
			})
		}
	})
	// Combine: C11 = P1+P4-P5+P7, C12 = P3+P5, C21 = P2+P4,
	// C22 = P1-P2+P3+P6.
	c11, c12, c21, c22 := out.quad(0, 0), out.quad(0, 1), out.quad(1, 0), out.quad(1, 1)
	for i := 0; i < h; i++ {
		for j := 0; j < h; j++ {
			p1 := p[0].get(c, i, j)
			p2 := p[1].get(c, i, j)
			p3 := p[2].get(c, i, j)
			p4 := p[3].get(c, i, j)
			p5 := p[4].get(c, i, j)
			p6 := p[5].get(c, i, j)
			p7 := p[6].get(c, i, j)
			c11.set(c, i, j, p1+p4-p5+p7)
			c12.set(c, i, j, p3+p5)
			c21.set(c, i, j, p2+p4)
			c22.set(c, i, j, p1-p2+p3+p6)
		}
	}
}

// combineOperand materializes l (+/- r) into a fresh temporary owned by
// the calling task, or returns *l directly when there is no second
// operand.
func combineOperand(c *task.Ctx, rt *task.Runtime, l, r *mview, sub bool, h, prod int, side string) mview {
	if r == nil {
		return *l
	}
	t := mview{m: mem.NewMatrix[float64](rt, fmt.Sprintf("strassen.T%d%s", prod+1, side), h, h), n: h}
	for i := 0; i < h; i++ {
		for j := 0; j < h; j++ {
			if sub {
				t.set(c, i, j, l.get(c, i, j)-r.get(c, i, j))
			} else {
				t.set(c, i, j, l.get(c, i, j)+r.get(c, i, j))
			}
		}
	}
	return t
}

// naiveMul is the cutoff base case.
func naiveMul(c *task.Ctx, a, b, out mview) {
	n := a.n
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += a.get(c, i, k) * b.get(c, k, j)
			}
			out.set(c, i, j, s)
		}
	}
}
