package bench

import (
	"fmt"
	"math"

	"spd3/internal/mem"
	"spd3/internal/task"
)

func init() {
	register(&Benchmark{
		Name:   "LUFact",
		Source: "JGF §2",
		Desc:   "LU factorisation",
		Args:   "(C)",
		JGF:    true,
		Run:    runLUFact,
	})
}

// runLUFact factorizes a dense n×n system with partial pivoting and
// solves A·x = b, validating the residual (the JGF Linpack-derived
// kernel). The trailing-submatrix update parallelizes over rows: every
// task reads the shared pivot row (read-shared — FastTrack's worst case)
// and writes only its own row. In the original JGF code the sweeps were
// separated by the buggy custom barrier §6.3 describes; here each sweep
// is a finish.
func runLUFact(rt *task.Runtime, in Input) (float64, error) {
	n := in.scaled(64, 4)
	a := mem.NewMatrix[float64](rt, "lufact.A", n, n)
	b := mem.NewArray[float64](rt, "lufact.b", n)
	piv := mem.NewArray[int](rt, "lufact.piv", n)

	// Deterministic well-conditioned system; keep an uninstrumented
	// copy for the residual check.
	r := newRNG(31)
	a0 := make([]float64, n*n)
	b0 := make([]float64, n)
	for i := range a0 {
		a0[i] = r.float64() - 0.5
	}
	for i := 0; i < n; i++ {
		a0[i*n+i] += float64(n) // diagonally dominant
		b0[i] = r.float64()
	}
	copy(a.Unchecked(), a0)
	copy(b.Unchecked(), b0)

	err := rt.Run(func(c *task.Ctx) {
		for k := 0; k < n-1; k++ {
			// Pivot search and row swap: sequential, as in DGEFA.
			p := k
			best := math.Abs(a.Get(c, k, k))
			for i := k + 1; i < n; i++ {
				if v := math.Abs(a.Get(c, i, k)); v > best {
					best, p = v, i
				}
			}
			piv.Set(c, k, p)
			if p != k {
				for j := 0; j < n; j++ {
					akj, apj := a.Get(c, k, j), a.Get(c, p, j)
					a.Set(c, k, j, apj)
					a.Set(c, p, j, akj)
				}
				bk, bp := b.Get(c, k), b.Get(c, p)
				b.Set(c, k, bp)
				b.Set(c, p, bk)
			}
			// Multipliers, then the parallel trailing update.
			pivot := a.Get(c, k, k)
			for i := k + 1; i < n; i++ {
				a.Update(c, i, k, func(v float64) float64 { return v / pivot })
			}
			k := k
			c.ParallelFor(k+1, n, in.grain(c, n-k-1), func(c *task.Ctx, i int) {
				m := a.Get(c, i, k)
				for j := k + 1; j < n; j++ {
					akj := a.Get(c, k, j)
					a.Update(c, i, j, func(v float64) float64 { return v - m*akj })
				}
				mbk := m * b.Get(c, k)
				b.Update(c, i, func(v float64) float64 { return v - mbk })
			})
		}
		// Back substitution (sequential, as in DGESL).
		for i := n - 1; i >= 0; i-- {
			s := b.Get(c, i)
			for j := i + 1; j < n; j++ {
				s -= a.Get(c, i, j) * b.Get(c, j)
			}
			b.Set(c, i, s/a.Get(c, i, i))
		}
	})
	if err != nil {
		return 0, err
	}

	// Residual check against the pristine system.
	x := b.Unchecked()
	worst := 0.0
	for i := 0; i < n; i++ {
		s := -b0[i]
		for j := 0; j < n; j++ {
			s += a0[i*n+j] * x[j]
		}
		if v := math.Abs(s); v > worst {
			worst = v
		}
	}
	if worst > 1e-8 {
		return 0, fmt.Errorf("lufact: residual %g exceeds tolerance", worst)
	}
	sum := 0.0
	for _, v := range x {
		sum += v
	}
	return sum, nil
}
