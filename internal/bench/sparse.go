package bench

import (
	"sort"

	"spd3/internal/mem"
	"spd3/internal/task"
)

func init() {
	register(&Benchmark{
		Name:   "Sparse",
		Source: "JGF §2",
		Desc:   "Sparse matrix multiplication",
		Args:   "(C)",
		JGF:    true,
		Run:    runSparse,
	})
}

// runSparse is the JGF sparse matrix-vector kernel: y += A·x iterated
// over a random CRS matrix, parallel over rows. The value, index, and
// vector arrays are read-shared; each task writes only its own rows of y.
func runSparse(rt *task.Runtime, in Input) (float64, error) {
	n := in.scaled(2000, 16)
	perRow := 5
	iters := in.scaled(20, 2)
	nnz := n * perRow

	vals := mem.NewArray[float64](rt, "sparse.val", nnz)
	cols := mem.NewArray[int](rt, "sparse.col", nnz)
	x := mem.NewArray[float64](rt, "sparse.x", n)
	y := mem.NewArray[float64](rt, "sparse.y", n)

	r := newRNG(41)
	cr := cols.Unchecked()
	vr := vals.Unchecked()
	for row := 0; row < n; row++ {
		base := row * perRow
		seen := map[int]bool{}
		for k := 0; k < perRow; k++ {
			col := r.intn(n)
			for seen[col] {
				col = r.intn(n)
			}
			seen[col] = true
			cr[base+k] = col
		}
		sort.Ints(cr[base : base+perRow])
		for k := 0; k < perRow; k++ {
			vr[base+k] = r.float64() - 0.5
		}
	}
	for i, raw := 0, x.Unchecked(); i < len(raw); i++ {
		raw[i] = r.float64()
	}

	err := rt.Run(func(c *task.Ctx) {
		for it := 0; it < iters; it++ {
			c.ParallelFor(0, n, in.grain(c, n), func(c *task.Ctx, row int) {
				s := y.Get(c, row)
				base := row * perRow
				for k := 0; k < perRow; k++ {
					s += vals.Get(c, base+k) * x.Get(c, cols.Get(c, base+k))
				}
				y.Set(c, row, s)
			})
		}
	})
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, v := range y.Unchecked() {
		sum += v
	}
	return sum, nil
}
