package bench

import (
	"math"

	"spd3/internal/mem"
	"spd3/internal/task"
)

func init() {
	register(&Benchmark{
		Name:   "MonteCarlo",
		Source: "JGF §3",
		Desc:   "Monte Carlo simulation",
		Args:   "(B)",
		JGF:    true,
		Run:    runMonteCarlo,
	})
}

// runMonteCarlo prices an asset by geometric-Brownian-motion simulation,
// one path per task (the JGF financial kernel). The four model
// parameters are read-shared; each task writes one result slot; the
// reduction afterwards runs in the main task.
//
// §6.1 note: the paper's fine-grained rewrite of this benchmark contained
// a benign race — repeated parallel assignments of the same value —
// which SPD3 duly reported; RacyMonteCarlo preserves that variant.
func runMonteCarlo(rt *task.Runtime, in Input) (float64, error) {
	paths := in.scaled(4000, 16)
	pathLen := 60
	params := mem.NewArray[float64](rt, "mc.params", 4)
	results := mem.NewArray[float64](rt, "mc.results", paths)

	copy(params.Unchecked(), []float64{100.0 /* S0 */, 0.03 /* mu */, 0.2 /* sigma */, 1.0 / 252 /* dt */})

	err := rt.Run(func(c *task.Ctx) {
		c.ParallelFor(0, paths, in.grain(c, paths), func(c *task.Ctx, p int) {
			s0 := params.Get(c, 0)
			mu := params.Get(c, 1)
			sigma := params.Get(c, 2)
			dt := params.Get(c, 3)
			r := newRNG(uint64(p) + 1)
			logS := math.Log(s0)
			drift := (mu - sigma*sigma/2) * dt
			vol := sigma * math.Sqrt(dt)
			for s := 0; s < pathLen; s++ {
				logS += drift + vol*r.gaussian()
			}
			results.Set(c, p, math.Exp(logS))
		})
		// Reduction in the main task, ordered after the finish.
		sum := 0.0
		for p := 0; p < paths; p++ {
			sum += results.Get(c, p)
		}
		params.Set(c, 0, sum/float64(paths)) // reuse slot 0 as the output
	})
	if err != nil {
		return 0, err
	}
	return params.Unchecked()[0], nil
}
