package bench

// The §5.5 static check elimination measurement: three kernels, each in
// a checked form and in the form the checkelim eliminator produces for
// it (dup reads downgraded to Unchecked forms, loop-invariant reads
// hoisted to a checked local). The agreement test pins that the elided
// form preserves the verdict and race digest while performing strictly
// fewer dynamic checks; BenchmarkCheckElim measures the wall-clock gap
// EXPERIMENTS.md reports. The elided bodies are hand-written replicas
// of the eliminator's output — the source-level correspondence itself
// is pinned by the checkelim fixtures, twins, and progen differential.

import (
	"fmt"
	"sort"
	"testing"

	"spd3"
	"spd3/internal/stats"
)

// ceElidedStatic mirrors the count a spd3inst stamp would register for
// the hand-elided kernels in this file: one hoisted read in the GEMM
// inner loop, one dominated duplicate read each in SOR and vecnorm.
const ceElidedStatic = 3

func init() { spd3.RegisterStaticElided(ceElidedStatic) }

func ceEngine(tb testing.TB) *spd3.Engine {
	tb.Helper()
	eng, err := spd3.New(spd3.Options{Executor: spd3.Sequential})
	if err != nil {
		tb.Fatal(err)
	}
	return eng
}

// ceGemm is a scaled matrix multiply: out = alpha * a×b with a shared
// alpha. The checked form reads alpha once per (i,j) cell; the elided
// form hoists that loop-invariant read out of the j-loop, exactly as
// checkelim's rule 2 rewrites it.
func ceGemm(tb testing.TB, elided bool) *spd3.Report {
	const n = 48
	eng := ceEngine(tb)
	a := make([][]float64, n)
	b := make([][]float64, n)
	for i := 0; i < n; i++ {
		a[i] = make([]float64, n)
		b[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			a[i][j] = float64(i + j)
			b[i][j] = float64(i - j)
		}
	}
	out := spd3.NewMatrix[float64](eng, "ce.out", n, n)
	alpha := spd3.NewVar[float64](eng, "ce.alpha", 0.5)
	rep, err := eng.Run(func(c *spd3.Ctx) {
		c.ParallelFor(0, n, 1, func(c *spd3.Ctx, i int) {
			if elided {
				alphaInv := alpha.Get(c) //spd3opt:hoisted loop-invariant
				for j := 0; j < n; j++ {
					s := 0.0
					for k := 0; k < n; k++ {
						s += a[i][k] * b[k][j]
					}
					out.Set(c, i, j, alphaInv*s)
				}
			} else {
				for j := 0; j < n; j++ {
					s := 0.0
					for k := 0; k < n; k++ {
						s += a[i][k] * b[k][j]
					}
					out.Set(c, i, j, alpha.Get(c)*s)
				}
			}
		})
	})
	if err != nil {
		tb.Fatal(err)
	}
	return rep
}

// ceSOR is an over-relaxation sweep where each task owns its rows, so
// the kernel is race-free; the update re-reads the cell it just read,
// and the elided form downgrades the duplicate to UncheckedRow, as
// checkelim's rule 1 rewrites it.
func ceSOR(tb testing.TB, elided bool) *spd3.Report {
	const n = 128
	const om = 0.8
	eng := ceEngine(tb)
	g := spd3.NewMatrix[float64](eng, "ce.grid", n, n)
	for i := 0; i < n; i++ {
		row := g.UncheckedRow(i)
		for j := 0; j < n; j++ {
			row[j] = float64((i * j) % 7)
		}
	}
	rep, err := eng.Run(func(c *spd3.Ctx) {
		c.ParallelFor(1, n-1, 1, func(c *spd3.Ctx, i int) {
			if elided {
				for j := 1; j < n-1; j++ {
					g.Set(c, i, j, g.Get(c, i, j)-om*(g.UncheckedRow(i)[j]-float64(i+j))) //spd3opt:elided dominated-by same line
				}
			} else {
				for j := 1; j < n-1; j++ {
					g.Set(c, i, j, g.Get(c, i, j)-om*(g.Get(c, i, j)-float64(i+j)))
				}
			}
		})
	})
	if err != nil {
		tb.Fatal(err)
	}
	return rep
}

// ceVecnorm is a disjoint-chunk squared norm; the product re-reads
// x[i], and the elided form downgrades the duplicate, as checkelim's
// rule 1 rewrites it. The chunk bounds are runtime values, so rule 2
// does not apply — this isolates the dup rule.
func ceVecnorm(tb testing.TB, elided bool) *spd3.Report {
	const n = 1 << 13
	const tasks = 8
	eng := ceEngine(tb)
	x := spd3.NewArray[float64](eng, "ce.x", n)
	out := spd3.NewArray[float64](eng, "ce.norm", tasks)
	xs := x.Unchecked()
	for i := range xs {
		xs[i] = float64(i % 11)
	}
	rep, err := eng.Run(func(c *spd3.Ctx) {
		c.ParallelFor(0, tasks, 1, func(c *spd3.Ctx, p int) {
			chunk := n / tasks
			s := 0.0
			if elided {
				for i := p * chunk; i < (p+1)*chunk; i++ {
					s += x.Get(c, i) * x.Unchecked()[i] //spd3opt:elided dominated-by same line
				}
			} else {
				for i := p * chunk; i < (p+1)*chunk; i++ {
					s += x.Get(c, i) * x.Get(c, i)
				}
			}
			out.Set(c, p, s)
		})
	})
	if err != nil {
		tb.Fatal(err)
	}
	return rep
}

var ceKernels = []struct {
	name string
	run  func(testing.TB, bool) *spd3.Report
}{
	{"gemm", ceGemm},
	{"sor", ceSOR},
	{"vecnorm", ceVecnorm},
}

// ceDigest renders the sorted deduplicated race set, the same shape the
// differential twins compare.
func ceDigest(rep *spd3.Report) string {
	set := make(map[string]struct{})
	for _, rc := range rep.Races {
		set[fmt.Sprintf("%s/%s/%d", rc.Kind, rc.Region, rc.Index)] = struct{}{}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out string
	for _, k := range keys {
		out += k + "\n"
	}
	return out
}

// TestCheckElimAgreement pins the §5.5 contract at runtime: the elided
// kernels produce the same verdict and race digest as the checked ones
// while performing strictly fewer dynamic checks, and the stamped
// static-elision count surfaces in every report.
func TestCheckElimAgreement(t *testing.T) {
	for _, k := range ceKernels {
		k := k
		t.Run(k.name, func(t *testing.T) {
			base := k.run(t, false)
			opt := k.run(t, true)
			if base.RaceFree() != opt.RaceFree() {
				t.Errorf("verdict changed: checked race-free=%v, elided race-free=%v",
					base.RaceFree(), opt.RaceFree())
			}
			if bd, od := ceDigest(base), ceDigest(opt); bd != od {
				t.Errorf("race digest changed\nchecked:\n%s\nelided:\n%s", bd, od)
			}
			bAcc := base.Stats.Reads + base.Stats.Writes
			oAcc := opt.Stats.Reads + opt.Stats.Writes
			if oAcc >= bAcc {
				t.Errorf("elision did not reduce checked accesses: checked=%d, elided=%d", bAcc, oAcc)
			}
			if got := opt.Stats.Counters[stats.ChecksElidedStatic]; got < ceElidedStatic {
				t.Errorf("mem.checks_elided_static = %d, want >= %d", got, ceElidedStatic)
			}
			t.Logf("%s: checked accesses %d -> %d (%.1f%% elided)",
				k.name, bAcc, oAcc, 100*float64(bAcc-oAcc)/float64(bAcc))
		})
	}
}

// BenchmarkCheckElim measures the wall-clock cost of the checked vs
// statically elided kernel forms (EXPERIMENTS.md §5.5 table).
func BenchmarkCheckElim(b *testing.B) {
	for _, k := range ceKernels {
		for _, v := range []struct {
			name   string
			elided bool
		}{{"checked", false}, {"elided", true}} {
			b.Run(k.name+"/"+v.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					k.run(b, v.elided)
				}
			})
		}
	}
}
