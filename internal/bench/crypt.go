package bench

import (
	"fmt"

	"spd3/internal/mem"
	"spd3/internal/task"
)

func init() {
	register(&Benchmark{
		Name:   "Crypt",
		Source: "JGF §2",
		Desc:   "IDEA encryption",
		Args:   "(C)",
		JGF:    true,
		Run:    runCrypt,
	})
}

// runCrypt is the JGF IDEA kernel: encrypt plain1 into crypt1, decrypt
// into plain2, and verify plain2 == plain1. The 52-entry key schedules
// are read-shared by every block task — with large arrays this is the
// benchmark where the paper reports the largest gap over FastTrack
// (Table 2: 133× vs 1.84×), because every element of three big arrays is
// monitored.
func runCrypt(rt *task.Runtime, in Input) (float64, error) {
	n := in.scaled(16384, 64)
	n &^= 7 // whole 8-byte blocks

	plain1 := mem.NewArray[byte](rt, "crypt.plain1", n)
	crypt1 := mem.NewArray[byte](rt, "crypt.crypt1", n)
	plain2 := mem.NewArray[byte](rt, "crypt.plain2", n)
	z := mem.NewArray[uint16](rt, "crypt.Z", 52)
	dk := mem.NewArray[uint16](rt, "crypt.DK", 52)

	r := newRNG(23)
	for i, raw := 0, plain1.Unchecked(); i < len(raw); i++ {
		raw[i] = byte(r.intn(256))
	}
	var userKey [8]uint16
	for i := range userKey {
		userKey[i] = uint16(r.intn(1 << 16))
	}
	enc := ideaEncryptionKey(userKey)
	copy(z.Unchecked(), enc[:])
	dec := ideaDecryptionKey(enc)
	copy(dk.Unchecked(), dec[:])

	blocks := n / 8
	err := rt.Run(func(c *task.Ctx) {
		c.ParallelFor(0, blocks, in.grain(c, blocks), func(c *task.Ctx, b int) {
			ideaBlock(c, plain1, crypt1, z, b)
		})
		c.ParallelFor(0, blocks, in.grain(c, blocks), func(c *task.Ctx, b int) {
			ideaBlock(c, crypt1, plain2, dk, b)
		})
	})
	if err != nil {
		return 0, err
	}
	p1, p2 := plain1.Unchecked(), plain2.Unchecked()
	sum := 0.0
	for i := range p1 {
		if p1[i] != p2[i] {
			return 0, fmt.Errorf("crypt: decrypt mismatch at byte %d: %d != %d", i, p2[i], p1[i])
		}
		sum += float64(crypt1.Unchecked()[i])
	}
	return sum, nil
}

// ideaBlock runs the 8.5-round IDEA cipher on 8-byte block b of src into
// dst with key schedule key, through the instrumented arrays.
func ideaBlock(c *task.Ctx, src, dst *mem.Array[byte], key *mem.Array[uint16], b int) {
	o := b * 8
	load := func(k int) uint16 {
		return uint16(src.Get(c, o+2*k))<<8 | uint16(src.Get(c, o+2*k+1))
	}
	x1, x2, x3, x4 := load(0), load(1), load(2), load(3)
	ki := 0
	next := func() uint16 { v := key.Get(c, ki); ki++; return v }

	for round := 0; round < 8; round++ {
		x1 = ideaMul(x1, next())
		x2 += next()
		x3 += next()
		x4 = ideaMul(x4, next())
		s3 := x3
		x3 ^= x1
		x3 = ideaMul(x3, next())
		s2 := x2
		x2 ^= x4
		x2 += x3
		x2 = ideaMul(x2, next())
		x3 += x2
		x1 ^= x2
		x4 ^= x3
		x2 ^= s3
		x3 ^= s2
	}
	r1 := ideaMul(x1, next())
	r2 := x3 + next()
	r3 := x2 + next()
	r4 := ideaMul(x4, next())

	store := func(k int, v uint16) {
		dst.Set(c, o+2*k, byte(v>>8))
		dst.Set(c, o+2*k+1, byte(v))
	}
	store(0, r1)
	store(1, r2)
	store(2, r3)
	store(3, r4)
}

// ideaMul is multiplication in GF(2^16+1) with 0 denoting 2^16.
func ideaMul(a, b uint16) uint16 {
	switch {
	case a == 0:
		return uint16(0x10001 - uint32(b))
	case b == 0:
		return uint16(0x10001 - uint32(a))
	default:
		p := uint32(a) * uint32(b)
		hi, lo := p>>16, p&0xffff
		if lo >= hi {
			return uint16(lo - hi)
		}
		return uint16(lo - hi + 0x10001)
	}
}

// ideaMulInv returns the multiplicative inverse of x in GF(2^16+1) by
// Fermat's little theorem: x^(2^16-1) mod (2^16+1).
func ideaMulInv(x uint16) uint16 {
	if x <= 1 {
		return x // 0 and 1 are self-inverse under the 0 == 2^16 convention
	}
	result := uint16(1)
	base := x
	for e := 0xffff; e > 0; e >>= 1 {
		if e&1 == 1 {
			result = ideaMul(result, base)
		}
		base = ideaMul(base, base)
	}
	return result
}

// ideaEncryptionKey expands a 128-bit user key to the 52 subkeys by the
// standard 25-bit rotation schedule.
func ideaEncryptionKey(user [8]uint16) (z [52]uint16) {
	copy(z[:8], user[:])
	for i := 8; i < 52; i++ {
		// z[i] is 16 bits of the user key cyclically rotated left by
		// 25 bits per 8-key group (the classic idea.c recurrence).
		j := i & 7
		switch {
		case j < 6:
			z[i] = z[i-7]<<9 | z[i-6]>>7
		case j == 6:
			z[i] = z[i-7]<<9 | z[i-14]>>7
		default:
			z[i] = z[i-15]<<9 | z[i-14]>>7
		}
	}
	return z
}

// ideaDecryptionKey inverts an encryption schedule (Plumb's de_key_idea):
// subkeys are consumed in reverse round order with multiplicative keys
// inverted, additive keys negated, and the middle additive pair swapped
// for the interior rounds.
func ideaDecryptionKey(z [52]uint16) (dk [52]uint16) {
	p := 52
	push := func(v uint16) { p--; dk[p] = v }
	zi := 0
	pull := func() uint16 { v := z[zi]; zi++; return v }

	t1 := ideaMulInv(pull())
	t2 := -pull()
	t3 := -pull()
	t4 := ideaMulInv(pull())
	push(t4)
	push(t3)
	push(t2)
	push(t1)
	for r := 1; r < 8; r++ {
		t1 = pull() // MA-box keys keep their order
		t2 = pull()
		push(t2)
		push(t1)
		t1 = ideaMulInv(pull())
		t2 = -pull()
		t3 = -pull()
		t4 = ideaMulInv(pull())
		push(t4)
		push(t2) // swapped
		push(t3) // swapped
		push(t1)
	}
	t1 = pull()
	t2 = pull()
	push(t2)
	push(t1)
	t1 = ideaMulInv(pull())
	t2 = -pull()
	t3 = -pull()
	t4 = ideaMulInv(pull())
	push(t4)
	push(t3)
	push(t2)
	push(t1)
	return dk
}
