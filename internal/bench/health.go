package bench

import (
	"spd3/internal/mem"
	"spd3/internal/task"
)

func init() {
	register(&Benchmark{
		Name:   "Health",
		Source: "BOTS",
		Desc:   "Simulates a country health system",
		Args:   "(large)",
		Run:    runHealth,
	})
}

// runHealth is a BOTS-style discrete simulation of a multilevel health
// system: a tree of villages where patients arrive at the leaves, are
// treated up to local capacity, and the remainder are referred to the
// parent hospital. Each simulation step processes one tree level per
// finish, one village per task, bottom-up; referrals go through
// per-child inbox slots so all writes are disjoint and the level barrier
// orders producer and consumer.
func runHealth(rt *task.Runtime, in Input) (float64, error) {
	const branch = 3
	depth := 4 // 40 villages
	steps := in.scaled(100, 4)

	// Build the tree level by level.
	type level struct{ lo, hi int }
	var levels []level
	parent := []int{-1}
	slot := []int{0} // index among parent's children
	lo := 0
	for d := 0; d < depth; d++ {
		hi := len(parent)
		levels = append(levels, level{lo, hi})
		if d < depth-1 {
			for v := lo; v < hi; v++ {
				for s := 0; s < branch; s++ {
					parent = append(parent, v)
					slot = append(slot, s)
				}
			}
		}
		lo = hi
	}
	n := len(parent)

	waiting := mem.NewArray[int](rt, "health.waiting", n)
	treated := mem.NewArray[int](rt, "health.treated", n)
	inbox := mem.NewArray[int](rt, "health.inbox", n*branch)

	err := rt.Run(func(c *task.Ctx) {
		for s := 0; s < steps; s++ {
			// Bottom-up: deepest level first, one finish per level.
			for d := len(levels) - 1; d >= 0; d-- {
				lv := levels[d]
				isLeaf := d == len(levels)-1
				s := s
				c.ParallelFor(lv.lo, lv.hi, in.grain(c, lv.hi-lv.lo), func(c *task.Ctx, v int) {
					w := waiting.Get(c, v)
					// Absorb referrals from children (written in
					// the previous, deeper finish).
					if !isLeaf {
						for k := 0; k < branch; k++ {
							ib := v*branch + k
							w += inbox.Get(c, ib)
							inbox.Set(c, ib, 0)
						}
					}
					// New arrivals at the leaves.
					if isLeaf {
						r := newRNG(uint64(v)*1000003 + uint64(s))
						w += r.intn(3)
					}
					// Treat up to capacity; capacity grows toward
					// the root.
					capacity := 1 << (len(levels) - 1 - d)
					cure := w
					if cure > capacity {
						cure = capacity
					}
					w -= cure
					treated.Set(c, v, treated.Get(c, v)+cure)
					// Refer half of the remainder upward.
					if p := parent[v]; p >= 0 && w > 0 {
						up := (w + 1) / 2
						w -= up
						inbox.Set(c, p*branch+slot[v], up)
					}
					waiting.Set(c, v, w)
				})
			}
		}
	})
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, v := range treated.Unchecked() {
		sum += float64(v)
	}
	for _, v := range waiting.Unchecked() {
		sum += float64(v)
	}
	return sum, nil
}
