package bench

import (
	"spd3/internal/mem"
	"spd3/internal/task"
)

func init() {
	register(&Benchmark{
		Name:   "Mandelbrot",
		Source: "Shootout",
		Desc:   "Generate Mandelbrot set portable bitmap",
		Args:   "(8000)",
		Run:    runMandelbrot,
	})
}

// runMandelbrot renders an n×n bitmap of the Mandelbrot set over
// [-1.5,0.5]×[-1,1], one task per scanline. All monitored accesses are
// disjoint writes; the iteration work is task-local.
func runMandelbrot(rt *task.Runtime, in Input) (float64, error) {
	n := in.scaled(160, 8)
	const maxIter = 50
	img := mem.NewMatrix[uint8](rt, "mandel.img", n, n)

	err := rt.Run(func(c *task.Ctx) {
		c.ParallelFor(0, n, in.grain(c, n), func(c *task.Ctx, y int) {
			ci := 2*float64(y)/float64(n) - 1
			for x := 0; x < n; x++ {
				cr := 2*float64(x)/float64(n) - 1.5
				zr, zi := 0.0, 0.0
				in := uint8(1)
				for it := 0; it < maxIter; it++ {
					zr, zi = zr*zr-zi*zi+cr, 2*zr*zi+ci
					if zr*zr+zi*zi > 4 {
						in = 0
						break
					}
				}
				img.Set(c, y, x, in)
			}
		})
	})
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, v := range img.Unchecked() {
		sum += float64(v)
	}
	return sum, nil
}
