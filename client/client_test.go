package client_test

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"spd3/client"
	"spd3/internal/bench"
	_ "spd3/internal/detectors" // populate the registry, as cmd/spd3d does
	"spd3/internal/server"
	"spd3/internal/task"
	"spd3/internal/trace"
)

// newDaemon starts an in-process spd3d on an httptest listener and
// returns a typed client pointed at it.
func newDaemon(t *testing.T, cfg server.Config) (*server.Server, *client.Client) {
	t.Helper()
	s, err := server.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, client.New(ts.URL + "/") // trailing slash must not produce //v1 paths
}

// recordRacyMonteCarlo records the paper's benign-race benchmark under
// the depth-first executor, so every detector (including ESP-bags) can
// legally consume the trace.
func recordRacyMonteCarlo(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	rec := trace.NewRecorder(&buf, true)
	rt, err := task.New(task.Config{Executor: task.Sequential, Detector: rec})
	if err != nil {
		t.Fatal(err)
	}
	for _, rb := range bench.Racy() {
		if rb.Name == "RacyMonteCarlo" {
			if _, err := rb.Run(rt, bench.Input{Scale: 0.2}); err != nil {
				t.Fatal(err)
			}
			if err := rec.Close(); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}
	}
	t.Fatal("RacyMonteCarlo not in bench.Racy()")
	return nil
}

// TestClientRoundTrip drives every synchronous client method against a
// live daemon.
func TestClientRoundTrip(t *testing.T) {
	_, c := newDaemon(t, server.Config{MaxInFlight: 4})
	ctx := context.Background()

	if err := c.Health(ctx); err != nil {
		t.Fatalf("Health: %v", err)
	}

	dets, err := c.Detectors(ctx)
	if err != nil {
		t.Fatalf("Detectors: %v", err)
	}
	seq := map[string]bool{}
	for _, d := range dets {
		seq[d.Name] = d.Sequential
	}
	if v, ok := seq["spd3"]; !ok || v {
		t.Errorf("spd3 listing = %v/%v, want parallel-safe", v, ok)
	}
	if v, ok := seq["espbags"]; !ok || !v {
		t.Errorf("espbags listing = %v/%v, want sequential-only", v, ok)
	}

	tr := recordRacyMonteCarlo(t)
	rep, err := c.Analyze(ctx, "all", bytes.NewReader(tr))
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if rep.Tool != server.Tool || rep.Agree == nil || !*rep.Agree {
		t.Fatalf("Analyze report: %+v", rep)
	}

	// Default detector when none is named.
	rep, err = c.Analyze(ctx, "", bytes.NewReader(tr))
	if err != nil {
		t.Fatalf("Analyze default: %v", err)
	}
	if len(rep.Verdicts) != 1 || rep.Verdicts[0].Detector != "spd3" {
		t.Fatalf("default detector verdicts: %+v", rep.Verdicts)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Stats.Get("srv.requests") == 0 || st.Stats.Get("srv.analyses") == 0 {
		t.Fatalf("statsz counters empty: %+v", st)
	}
	if st.MaxInFlight != 4 || st.Draining {
		t.Fatalf("statsz gauges: %+v", st)
	}
}

// TestClientAPIError pins the typed error mapping: a 404 surfaces as
// *APIError carrying the daemon's message, and Saturated classifies the
// load-sheddable statuses.
func TestClientAPIError(t *testing.T) {
	_, c := newDaemon(t, server.Config{})

	_, err := c.Analyze(context.Background(), "nosuch", bytes.NewReader(recordRacyMonteCarlo(t)))
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %T %v, want *APIError", err, err)
	}
	if apiErr.Status != http.StatusNotFound || apiErr.Message == "" {
		t.Fatalf("APIError = %+v, want 404 with message", apiErr)
	}
	if apiErr.Saturated() {
		t.Error("404 classified as saturated")
	}
	if !(&client.APIError{Status: 429}).Saturated() || !(&client.APIError{Status: 503}).Saturated() {
		t.Error("429/503 not classified as saturated")
	}
}

// TestClientJobLifecycle drives the async surface end to end: submit,
// wait, result, events, delete — and checks the job result matches the
// synchronous path's verdict on the same trace.
func TestClientJobLifecycle(t *testing.T) {
	_, c := newDaemon(t, server.Config{MaxInFlight: 4})
	c.Tenant = "lifecycle"
	ctx := context.Background()
	tr := recordRacyMonteCarlo(t)

	st, err := c.SubmitJob(ctx, "all", bytes.NewReader(tr))
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	if st.ID == "" || st.Tenant != "lifecycle" || client.Terminal(st.State) {
		t.Fatalf("submit status: %+v", st)
	}

	fin, err := c.WaitJob(ctx, st.ID)
	if err != nil {
		t.Fatalf("WaitJob: %v", err)
	}
	if fin.State != client.StateDone {
		t.Fatalf("job state = %q (%s), want done", fin.State, fin.Error)
	}
	if fin.RaceCount == 0 {
		t.Fatalf("done job has no races: %+v", fin)
	}

	rep, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if rep.Agree == nil || !*rep.Agree {
		t.Fatalf("job result: %+v", rep)
	}
	sync, err := c.Analyze(ctx, "all", bytes.NewReader(tr))
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(rep.Verdicts) != len(sync.Verdicts) {
		t.Fatalf("verdict count: job %d vs sync %d", len(rep.Verdicts), len(sync.Verdicts))
	}
	for i := range rep.Verdicts {
		if rep.Verdicts[i].Racy != sync.Verdicts[i].Racy {
			t.Errorf("detector %s: job racy=%v sync racy=%v",
				rep.Verdicts[i].Detector, rep.Verdicts[i].Racy, sync.Verdicts[i].Racy)
		}
	}

	// The finished job's event stream replays its races and closes with
	// a done frame.
	var races, dones int
	evCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	err = c.StreamEvents(evCtx, st.ID, func(ev client.Event) bool {
		switch ev.Name {
		case "race":
			if ev.Race == nil || ev.Detector == "" {
				t.Errorf("malformed race event: %+v", ev)
			}
			races++
		case "done":
			if ev.State != client.StateDone {
				t.Errorf("done event state = %q", ev.State)
			}
			dones++
		}
		return true
	})
	if err != nil {
		t.Fatalf("StreamEvents: %v", err)
	}
	if races == 0 || dones != 1 {
		t.Fatalf("event stream: %d races, %d done frames", races, dones)
	}

	if err := c.DeleteJob(ctx, st.ID); err != nil {
		t.Fatalf("DeleteJob: %v", err)
	}
	var apiErr *client.APIError
	if _, err := c.GetJob(ctx, st.ID); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("GetJob after delete: %v, want 404", err)
	}
}

// TestClientQuotaRetryAfter pins the typed 429: an exhausted tenant
// queue surfaces as a saturated *APIError carrying Retry-After.
func TestClientQuotaRetryAfter(t *testing.T) {
	_, c := newDaemon(t, server.Config{Quota: server.QuotaConfig{MaxQueuedJobs: 1}})
	c.Tenant = "tight"
	ctx := context.Background()
	tr := recordRacyMonteCarlo(t)

	// Park one job in the queue, then overflow the quota with a second.
	// The first job may finish quickly, so loop until the 429 shows up
	// or the submissions prove the quota is never enforced.
	var apiErr *client.APIError
	saw429 := false
	for i := 0; i < 50 && !saw429; i++ {
		_, err := c.SubmitJob(ctx, "", bytes.NewReader(tr))
		if err == nil {
			continue
		}
		if !errors.As(err, &apiErr) {
			t.Fatalf("SubmitJob err = %T %v, want *APIError", err, err)
		}
		if apiErr.Status != http.StatusTooManyRequests {
			t.Fatalf("SubmitJob err = %+v, want 429", apiErr)
		}
		saw429 = true
	}
	if !saw429 {
		t.Skip("daemon drained every job before the quota filled; nothing to assert")
	}
	if !apiErr.Saturated() {
		t.Error("429 not classified as saturated")
	}
	if apiErr.RetryAfter <= 0 {
		t.Errorf("429 Retry-After = %v, want > 0", apiErr.RetryAfter)
	}
}
