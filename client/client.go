// Package client is the typed Go client for a running spd3d daemon —
// the public successor to the helpers that used to live in
// internal/server. It speaks both API generations: the synchronous
// /v1/analyze call, and the /v2 async job API (SubmitJob → WaitJob →
// Result, with StreamEvents for live race findings over SSE).
//
// The package is deliberately free of internal imports: every wire
// type is declared here from the daemon's stable JSON contract, so
// external tooling can depend on it without reaching into internal/.
// Daemon stats arrive as the expvar-style counters map (see
// StatsSnapshot), keyed by the namespaced counter names documented in
// the README (cas.*, dmhp.*, srv.*, job.*, store.*, quota.*, ...).
package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// Client talks to one spd3d daemon. The zero value is not usable;
// construct with New.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:7331".
	BaseURL string
	// HTTPClient is the underlying transport; New installs a default
	// with a generous overall timeout. Streaming calls (StreamEvents)
	// and long waits (WaitJob) strip the client timeout and rely on the
	// caller's context instead.
	HTTPClient *http.Client
	// Tenant, when set, is sent as the X-SPD3-Tenant header on every
	// request, scoping jobs and quotas to that tenant.
	Tenant string
	// Sample, when set, is sent as the sample= query parameter on
	// Analyze and SubmitJob: a sampling spec like "bernoulli:0.01" or
	// "burst:0.02" overriding the daemon's per-tenant sampling config
	// for this client's submissions ("off" forces every check to run).
	Sample string
}

// New returns a client for the daemon at baseURL.
func New(baseURL string) *Client {
	return &Client{
		BaseURL:    strings.TrimRight(baseURL, "/"),
		HTTPClient: &http.Client{Timeout: 5 * time.Minute},
	}
}

// APIError is a non-2xx daemon response, decoded from its JSON error
// envelope.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Message is the daemon's error text.
	Message string
	// RetryAfter is the daemon's suggested backoff on a 429 quota
	// rejection (zero when the daemon sent none).
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("spd3d: %s (HTTP %d)", e.Message, e.Status)
}

// Saturated reports whether the request was shed by admission control
// or quota (429 or 503 draining) — the retryable class a load
// generator counts separately from hard failures.
func (e *APIError) Saturated() bool {
	return e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable
}

// ---- wire types (the daemon's stable JSON contract) ----

// Race is one reported race.
type Race struct {
	Kind   string `json:"kind"`
	Region string `json:"region"`
	Index  int    `json:"index"`
	Prev   string `json:"prev"`
	Cur    string `json:"cur"`
}

// StatsSnapshot is the daemon's observability snapshot in wire form:
// the namespaced counters map plus histograms, per-region traffic, and
// the detector footprint. Counter keys are stable wire names like
// "srv.analyses", "job.submitted", "store.put_bytes".
type StatsSnapshot struct {
	Counters   map[string]int64   `json:"counters"`
	Histograms map[string][]int64 `json:"histograms"`
	Regions    []RegionStats      `json:"regions"`
	Footprint  Footprint          `json:"footprint"`
}

// Get returns one counter by wire name (0 when absent).
func (s *StatsSnapshot) Get(name string) int64 {
	if s == nil {
		return 0
	}
	return s.Counters[name]
}

// RegionStats is one region's merged traffic.
type RegionStats struct {
	Name   string `json:"name"`
	Elems  int    `json:"elems"`
	Reads  int64  `json:"reads"`
	Writes int64  `json:"writes"`
}

// Footprint is a detector's analytic memory accounting.
type Footprint struct {
	ShadowBytes int64 `json:"shadow_bytes"`
	TreeBytes   int64 `json:"tree_bytes"`
	ClockBytes  int64 `json:"clock_bytes"`
	SetBytes    int64 `json:"set_bytes"`
}

// Verdict is one detector's result on one trace.
type Verdict struct {
	Detector   string         `json:"detector"`
	Racy       bool           `json:"racy"`
	RaceCount  int            `json:"race_count"`
	Races      []Race         `json:"races"`
	Capped     bool           `json:"capped,omitempty"`
	DurationMS float64        `json:"duration_ms"`
	Stats      *StatsSnapshot `json:"stats,omitempty"`
}

// Report is the merged analysis envelope: the /v1/analyze response and
// the /v2 job result.
type Report struct {
	Tool       string    `json:"tool"`
	Version    string    `json:"version"`
	Detector   string    `json:"detector"`
	Sequential bool      `json:"sequential"`
	TraceBytes int64     `json:"trace_bytes"`
	Verdicts   []Verdict `json:"verdicts"`
	Sharded    bool      `json:"sharded,omitempty"`
	Segments   int       `json:"segments,omitempty"`
	Agree      *bool     `json:"agree,omitempty"`
}

// Detector describes one registry entry from /v1/detectors.
type Detector struct {
	Name       string `json:"name"`
	Sequential bool   `json:"sequential"`
}

// Statsz is the /statsz response.
type Statsz struct {
	Tool           string  `json:"tool"`
	Version        string  `json:"version"`
	UptimeSeconds  float64 `json:"uptime_seconds"`
	InFlight       int     `json:"in_flight"`
	MaxInFlight    int     `json:"max_in_flight"`
	Draining       bool    `json:"draining"`
	ShardWorkers   int     `json:"shard_workers"`
	ShardBusy      int     `json:"shard_busy"`
	JobsQueued     int     `json:"jobs_queued"`
	JobsRunning    int     `json:"jobs_running"`
	JobsTotal      int     `json:"jobs_total"`
	StoreBlobs     int     `json:"store_blobs"`
	StoreBytes     int64   `json:"store_bytes"`
	HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
	SysBytes       uint64  `json:"sys_bytes"`
	PeakHeapBytes  uint64  `json:"peak_heap_bytes"`
	PeakRSSBytes   int64   `json:"peak_rss_bytes"`
	// Sampling lists the daemon's live per-tenant sampling gauges: one
	// row per (tenant, spec) pair it has replayed under, carrying the
	// governor's current rate.
	Sampling []TenantSampling `json:"sampling,omitempty"`
	Stats    StatsSnapshot    `json:"stats"`
}

// TenantSampling is one live sampling gauge: the mode and current
// (governor-adapted) sampling rate in effect for one tenant.
type TenantSampling struct {
	Tenant string  `json:"tenant"`
	Mode   string  `json:"mode"`
	Rate   float64 `json:"rate"`
}

// DetectorProgress is one detector's live progress inside a job.
type DetectorProgress struct {
	Detector     string `json:"detector"`
	SegmentsDone int    `json:"segments_done"`
	RaceCount    int    `json:"race_count"`
}

// Job states, as carried in JobStatus.State.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Terminal reports whether state is one a job never leaves.
func Terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCanceled
}

// JobStatus is the machine-readable job state from GET /v2/jobs/{id}
// and the 202 body of POST /v2/jobs.
type JobStatus struct {
	Tool        string             `json:"tool"`
	Version     string             `json:"version"`
	ID          string             `json:"job_id"`
	Tenant      string             `json:"tenant"`
	Detector    string             `json:"detector"`
	Sequential  bool               `json:"sequential"`
	State       string             `json:"state"`
	TraceBytes  int64              `json:"trace_bytes"`
	StoredBytes int64              `json:"stored_bytes"`
	Segments    int                `json:"segments"`
	Sharded     bool               `json:"sharded"`
	Unsplit     bool               `json:"unsplit,omitempty"`
	Progress    []DetectorProgress `json:"progress,omitempty"`
	RaceCount   int                `json:"race_count"`
	Error       string             `json:"error,omitempty"`
	CreatedAt   time.Time          `json:"created_at"`
	UpdatedAt   time.Time          `json:"updated_at"`
}

// Event is one frame from a job's SSE stream: Name is "race", "state",
// or "done"; the payload fields are filled according to Name.
type Event struct {
	// Name is the SSE event name.
	Name string
	// Detector and Race are set on "race" events.
	Detector string `json:"detector"`
	Race     *Race  `json:"race"`
	// State is set on "state" and "done" events.
	State string `json:"state"`
	// RaceCount and Error are set on "done" events.
	RaceCount int    `json:"race_count"`
	Error     string `json:"error"`
}

// errorReport is the daemon's JSON error body.
type errorReport struct {
	Error string `json:"error"`
}

// do issues the request and decodes the response into out, converting
// non-2xx statuses into *APIError. want is the expected success status.
func (c *Client) do(req *http.Request, want int, out any) error {
	if c.Tenant != "" {
		req.Header.Set("X-SPD3-Tenant", c.Tenant)
	}
	resp, err := c.HTTPClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return fmt.Errorf("spd3d: reading response: %w", err)
	}
	if resp.StatusCode != want {
		apiErr := &APIError{Status: resp.StatusCode, Message: strings.TrimSpace(string(body))}
		var er errorReport
		if json.Unmarshal(body, &er) == nil && er.Error != "" {
			apiErr.Message = er.Error
		}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if d, perr := time.ParseDuration(ra + "s"); perr == nil {
				apiErr.RetryAfter = d
			}
		}
		return apiErr
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("spd3d: decoding response: %w", err)
	}
	return nil
}

// submitURL builds a submission URL (Analyze or SubmitJob) carrying
// the optional detector and sampling-override query parameters.
func (c *Client) submitURL(path, detector string) string {
	q := url.Values{}
	if detector != "" {
		q.Set("detector", detector)
	}
	if c.Sample != "" {
		q.Set("sample", c.Sample)
	}
	u := c.BaseURL + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	return u
}

// ---- /v1 + shared endpoints ----

// Analyze POSTs a recorded trace to the synchronous /v1/analyze
// endpoint and returns the race report. detector is a registry name,
// or "all" for differential mode; "" selects the daemon default
// (spd3). For large traces prefer SubmitJob, which does not hold the
// connection for the whole replay.
func (c *Client) Analyze(ctx context.Context, detector string, tr io.Reader) (*Report, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.submitURL("/v1/analyze", detector), tr)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	var rep Report
	if err := c.do(req, http.StatusOK, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// Detectors returns the daemon's registry listing.
func (c *Client) Detectors(ctx context.Context) ([]Detector, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/detectors", nil)
	if err != nil {
		return nil, err
	}
	var list struct {
		Detectors []Detector `json:"detectors"`
	}
	if err := c.do(req, http.StatusOK, &list); err != nil {
		return nil, err
	}
	return list.Detectors, nil
}

// Health checks /healthz; nil means the daemon is up and not draining.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return err
	}
	return c.do(req, http.StatusOK, nil)
}

// Stats returns the daemon's /statsz snapshot.
func (c *Client) Stats(ctx context.Context) (*Statsz, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/statsz", nil)
	if err != nil {
		return nil, err
	}
	var st Statsz
	if err := c.do(req, http.StatusOK, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// ---- /v2 job API ----

// SubmitJob streams a recorded trace to POST /v2/jobs and returns the
// accepted job's status (state "queued"). The upload is the only
// synchronous part; pair with WaitJob/Result to collect the analysis.
func (c *Client) SubmitJob(ctx context.Context, detector string, tr io.Reader) (*JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.submitURL("/v2/jobs", detector), tr)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	var st JobStatus
	if err := c.do(req, http.StatusAccepted, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// GetJob returns one job's current status.
func (c *Client) GetJob(ctx context.Context, id string) (*JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v2/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	var st JobStatus
	if err := c.do(req, http.StatusOK, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// WaitJob polls a job until it reaches a terminal state (done, failed,
// or canceled) or ctx expires, backing off from 10ms to 1s between
// polls. It returns the terminal status; inspect State to distinguish
// success from failure.
func (c *Client) WaitJob(ctx context.Context, id string) (*JobStatus, error) {
	delay := 10 * time.Millisecond
	for {
		st, err := c.GetJob(ctx, id)
		if err != nil {
			return nil, err
		}
		if Terminal(st.State) {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(delay):
		}
		if delay *= 2; delay > time.Second {
			delay = time.Second
		}
	}
}

// Result fetches a finished job's merged report. A job that failed or
// was canceled surfaces as *APIError with the daemon's recorded status;
// a job still running surfaces as *APIError with status 202.
func (c *Client) Result(ctx context.Context, id string) (*Report, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v2/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := c.do(req, http.StatusOK, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// CancelJob cancels a queued or running job (DELETE on a live job).
// The replay stops at its next cancellation poll; the job lands in
// state "canceled".
func (c *Client) CancelJob(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.BaseURL+"/v2/jobs/"+id, nil)
	if err != nil {
		return err
	}
	return c.do(req, http.StatusAccepted, nil)
}

// DeleteJob deletes a finished job: its manifest and quota charge are
// released immediately, its segments on the next GC sweep.
func (c *Client) DeleteJob(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.BaseURL+"/v2/jobs/"+id, nil)
	if err != nil {
		return err
	}
	return c.do(req, http.StatusNoContent, nil)
}

// StreamEvents subscribes to a job's SSE stream and delivers each
// event to fn: races as they are found, state transitions, and a final
// "done" event after which the stream ends and StreamEvents returns
// nil. fn returning false detaches early. The call blocks until the
// stream ends, fn detaches, or ctx is canceled; it uses a transport
// without the client's overall timeout, since a healthy stream can
// legitimately outlive it.
func (c *Client) StreamEvents(ctx context.Context, id string, fn func(Event) bool) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v2/jobs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	if c.Tenant != "" {
		req.Header.Set("X-SPD3-Tenant", c.Tenant)
	}
	hc := &http.Client{Transport: c.HTTPClient.Transport}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		apiErr := &APIError{Status: resp.StatusCode, Message: strings.TrimSpace(string(body))}
		var er errorReport
		if json.Unmarshal(body, &er) == nil && er.Error != "" {
			apiErr.Message = er.Error
		}
		return apiErr
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	var ev Event
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			ev = Event{Name: strings.TrimPrefix(line, "event: ")}
		case strings.HasPrefix(line, "data: "):
			json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev) //nolint:errcheck // unknown fields are simply absent
		case line == "":
			if ev.Name == "" {
				continue
			}
			done := ev.Name == "done"
			if !fn(ev) {
				return nil
			}
			if done {
				return nil
			}
			ev = Event{}
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return err
	}
	return nil
}
