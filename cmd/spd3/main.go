// Command spd3 runs one benchmark of the evaluation suite under a chosen
// race detector and reports time, memory, and any detected races.
//
// Usage:
//
//	spd3 -list
//	spd3 -bench Crypt -detector spd3 -workers 4
//	spd3 -bench LUFact -detector fasttrack -chunked -scale 2
//	spd3 -racy RacyMonteCarlo -detector spd3
//	spd3 -bench SOR -stats          # append the observability snapshot as JSON
//	spd3 -bench SOR -workload       # profile the workload itself (no detection)
//
// Record once, analyze offline under several detectors:
//
//	spd3 -bench SOR -record sor.trc
//	spd3 -replay sor.trc -detector spd3
//	spd3 -replay sor.trc -detector fasttrack
//
// Recorded traces are also the unit of work of the spd3d analysis
// service: POST one to a running daemon instead of replaying locally
// (see cmd/spd3d, and cmd/spd3load for service-level benchmarks):
//
//	curl -fsS --data-binary @sor.trc 'http://127.0.0.1:7331/v1/analyze?detector=all'
//
// Detectors come from the detect registry (see -detector's usage string
// for the current list); hidden ablation variants such as spd3-walk are
// accepted by name as well.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"spd3/internal/bench"
	"spd3/internal/detect"
	_ "spd3/internal/detectors" // populate the detector registry
	"spd3/internal/sample"
	"spd3/internal/stats"
	"spd3/internal/task"
	"spd3/internal/trace"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list the benchmark suite and exit")
		name      = flag.String("bench", "", "benchmark name (see -list)")
		racy      = flag.String("racy", "", "run a deliberately racy variant (RacyMonteCarlo, BuggyBarrier)")
		detector  = flag.String("detector", "spd3", "one of: "+strings.Join(detect.Names(), " | "))
		workers   = flag.Int("workers", 4, "worker count (pool executor)")
		scale     = flag.Float64("scale", 1, "problem-size multiplier")
		chunked   = flag.Bool("chunked", false, "coarse one-chunk-per-worker loops")
		halt      = flag.Bool("halt", false, "stop checking after the first race (paper semantics)")
		record    = flag.String("record", "", "record the execution trace to this file instead of detecting (replay with -replay or POST to spd3d)")
		replay    = flag.String("replay", "", "replay a recorded trace into -detector instead of executing")
		statsDump = flag.Bool("stats", false, "append the run's observability snapshot as JSON")
		workload  = flag.Bool("workload", false, "print workload statistics (tasks, finishes, per-region traffic) instead of detecting")
		smpSpec   = flag.String("sample", "", "check-sampling spec mode:rate (bernoulli:0.01, page:0.05, burst:0.02); empty or off checks everything")
		smpBudget = flag.String("overhead-budget", "", "sampling overhead budget (e.g. 5% or 0.05): a governor adapts the rate online to hold it; empty freezes the rate")
	)
	flag.Parse()

	if *list {
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "Source\tBenchmark\tDescription")
		for _, b := range bench.All() {
			fmt.Fprintf(w, "%s\t%s %s\t%s\n", b.Source, b.Name, b.Args, b.Desc)
		}
		for _, rb := range bench.Racy() {
			fmt.Fprintf(w, "racy\t%s\t%s\n", rb.Name, rb.Desc)
		}
		w.Flush()
		return
	}

	run := func(rt *task.Runtime, in bench.Input) (float64, error) {
		if *racy != "" {
			for _, rb := range bench.Racy() {
				if rb.Name == *racy {
					return rb.Run(rt, in)
				}
			}
			return 0, fmt.Errorf("unknown racy variant %q", *racy)
		}
		b, err := bench.ByName(*name)
		if err != nil {
			return 0, err
		}
		return b.Run(rt, in)
	}
	if *name == "" && *racy == "" && *replay == "" {
		fmt.Fprintln(os.Stderr, "spd3: need -bench, -racy, -replay, or -list")
		flag.Usage()
		os.Exit(2)
	}

	if *workload {
		st := detect.NewStats()
		rt, err := task.New(task.Config{Executor: task.Pool, Workers: *workers, Detector: st})
		if err != nil {
			fmt.Fprintln(os.Stderr, "spd3:", err)
			os.Exit(1)
		}
		if _, err := run(rt, bench.Input{Scale: *scale, Chunked: *chunked}); err != nil {
			fmt.Fprintln(os.Stderr, "spd3:", err)
			os.Exit(1)
		}
		fmt.Printf("workload  : %s\n", st)
		fmt.Println("regions   :")
		for _, r := range st.Regions() {
			fmt.Printf("  %-22s %8d elems  %10d reads  %10d writes\n",
				r.Name, r.Elems, r.Reads.Load(), r.Writes.Load())
		}
		return
	}

	sink := detect.NewSink(*halt, 0)
	statsRec := stats.New(0)
	sink.SetStats(statsRec.Shard(0))
	detName := *detector
	if detName == "" {
		detName = "spd3"
	}
	var gov *sample.Governor
	var smp *sample.Sampler
	if *smpSpec != "" || *smpBudget != "" {
		cfg, err := sample.Parse(*smpSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spd3: -sample:", err)
			os.Exit(2)
		}
		budget, err := sample.ParseBudget(*smpBudget)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spd3: -overhead-budget:", err)
			os.Exit(2)
		}
		if cfg.Mode != sample.Off {
			gov = sample.NewGovernor(cfg, budget)
			smp = gov.Sampler()
		}
	}
	det, err := detect.New(detName, detect.FactoryOpts{Sink: sink, Stats: statsRec, Sampler: smp})
	if err != nil {
		fmt.Fprintln(os.Stderr, "spd3:", err)
		os.Exit(2)
	}
	// printSampling reports the effective sampling state after a run and
	// feeds the governor, so successive -replay invocations of a script
	// can watch the adapted rate move.
	printSampling := func(elapsed time.Duration) {
		if gov == nil {
			return
		}
		snap := statsRec.Snapshot()
		gov.ObserveSnapshot(snap, elapsed)
		fmt.Printf("sampling  : %s  rate: %.4f  checked: %d  skipped: %d\n",
			gov.Mode(), gov.Rate(), snap.Get(stats.SampleChecked), snap.Get(stats.SampleSkipped))
	}

	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spd3:", err)
			os.Exit(1)
		}
		defer f.Close()
		start := time.Now()
		if err := trace.Replay(f, det); err != nil {
			// The typed trace errors let us say what went wrong with the
			// file instead of dumping a decoder position.
			switch {
			case errors.Is(err, trace.ErrBadMagic):
				fmt.Fprintf(os.Stderr, "spd3: %s is not an SPD3 trace (record one with -record)\n", *replay)
			case errors.Is(err, trace.ErrTruncated):
				fmt.Fprintf(os.Stderr, "spd3: %s is truncated — the recording was interrupted or the copy is partial (%v)\n", *replay, err)
			case errors.Is(err, trace.ErrSequentialOnly):
				fmt.Fprintf(os.Stderr, "spd3: detector %q only accepts depth-first traces; re-record with a sequential-only detector selected (e.g. -detector %s -record)\n", detName, detName)
			default:
				fmt.Fprintln(os.Stderr, "spd3:", err)
			}
			os.Exit(1)
		}
		fmt.Printf("replayed  : %s into %s in %v\n", *replay, det.Name(), time.Since(start))
		printSampling(time.Since(start))
		if *statsDump {
			printStats(statsRec, det)
		}
		printRaces(sink, det)
		return
	}

	var rec *trace.Recorder
	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spd3:", err)
			os.Exit(1)
		}
		defer f.Close()
		rec = trace.NewRecorder(f, det.RequiresSequential())
		det = rec
	}
	rt, err := task.New(task.Config{Executor: task.Auto, Workers: *workers, Detector: det, Stats: statsRec})
	if err != nil {
		fmt.Fprintln(os.Stderr, "spd3:", err)
		os.Exit(1)
	}

	start := time.Now()
	sum, err := run(rt, bench.Input{Scale: *scale, Chunked: *chunked})
	elapsed := time.Since(start)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spd3:", err)
		os.Exit(1)
	}
	if rec != nil {
		if err := rec.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "spd3:", err)
			os.Exit(1)
		}
		fmt.Printf("recorded  : %s (checksum %g, %v)\n", *record, sum, elapsed)
		return
	}

	fmt.Printf("benchmark : %s%s\n", *name, *racy)
	fmt.Printf("detector  : %s  workers: %d  chunked: %v  scale: %g\n",
		det.Name(), *workers, *chunked, *scale)
	fmt.Printf("time      : %v\n", elapsed)
	fmt.Printf("checksum  : %g\n", sum)
	fp := det.Footprint()
	fmt.Printf("footprint : %.2f MB (shadow %.2f, tree %.2f, clocks %.2f, sets %.2f)\n",
		float64(fp.Total())/(1<<20), float64(fp.ShadowBytes)/(1<<20),
		float64(fp.TreeBytes)/(1<<20), float64(fp.ClockBytes)/(1<<20),
		float64(fp.SetBytes)/(1<<20))
	printSampling(elapsed)
	if *statsDump {
		printStats(statsRec, det)
	}
	printRaces(sink, det)
}

// printStats dumps the merged observability snapshot as indented JSON.
func printStats(rec *stats.Recorder, det detect.Detector) {
	snap := rec.Snapshot()
	snap.Footprint = det.Footprint()
	out, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "spd3:", err)
		os.Exit(1)
	}
	fmt.Printf("stats     :\n%s\n", out)
}

// printRaces reports the sink's races and exits non-zero when any were
// found. The all-schedules certification claim only holds for the
// detectors that are sound and precise per input on async/finish
// programs (SPD3, ESP-bags); FastTrack and Eraser verdicts cover the
// observed execution.
func printRaces(sink *detect.Sink, det detect.Detector) {
	races := sink.Races()
	if len(races) == 0 {
		switch det.Name() {
		case "spd3", "spd3-mutex", "espbags":
			fmt.Println("races     : none (this input is certified race-free for all schedules)")
		default:
			fmt.Println("races     : none detected in this execution")
		}
		return
	}
	fmt.Printf("races     : %d distinct location(s)\n", len(races))
	for i, r := range races {
		if i == 10 {
			fmt.Printf("  ... and %d more\n", len(races)-10)
			break
		}
		fmt.Printf("  %v\n", r)
	}
	os.Exit(1)
}
