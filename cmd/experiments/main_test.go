package main

import (
	"encoding/json"
	"testing"

	"spd3/internal/harness"
	"spd3/internal/stats"
)

// TestStatsJSONRoundTrips runs the stats experiment at a tiny scale
// through the same OnStats collection path the -stats flag uses and
// checks the emitted document is valid, schema-stable JSON. CI repeats
// this end to end against the built binary.
func TestStatsJSONRoundTrips(t *testing.T) {
	var entries []statsEntry
	cfg := harness.Config{
		Scale: 0.05, Repeats: 1, Threads: []int{1, 2},
		OnStats: func(benchmark string, tool harness.Tool, workers int, s stats.Snapshot) {
			entries = append(entries, statsEntry{
				Benchmark: benchmark, Tool: string(tool), Workers: workers, Stats: s,
			})
		},
	}
	e, err := harness.ByID("stats")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("OnStats never fired")
	}
	raw, err := json.Marshal(entries)
	if err != nil {
		t.Fatal(err)
	}
	var back []statsEntry
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("emitted JSON does not round-trip: %v", err)
	}
	for i, e := range back {
		if e.Benchmark == "" || e.Tool != "spd3" || e.Workers < 1 {
			t.Errorf("entry %d malformed: %+v", i, e)
		}
		if e.Stats.Writes == 0 {
			t.Errorf("entry %d (%s): no memory traffic recorded", i, e.Benchmark)
		}
	}
}
