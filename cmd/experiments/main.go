// Command experiments regenerates the paper's tables and figures on the
// Go reproduction.
//
// Usage:
//
//	experiments -run all
//	experiments -run fig3 -scale 2 -repeats 3 -threads 1,2,4,8,16
//	experiments -list
//
// Experiment IDs: table1, fig3, fig4, table2, table3, fig5, fig6,
// ablation-sync, ablation-stepcache, ablation-dmhp.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"spd3/internal/harness"
)

func main() {
	var (
		run     = flag.String("run", "all", "experiment id or 'all'")
		list    = flag.Bool("list", false, "list experiments and exit")
		scale   = flag.Float64("scale", 1, "problem-size multiplier")
		repeats = flag.Int("repeats", 3, "runs per data point (smallest wins)")
		threads = flag.String("threads", "1,2,4,8,16", "comma-separated worker sweep")
		format  = flag.String("format", "text", "output format: text | csv")
	)
	flag.Parse()

	var render harness.Format
	switch *format {
	case "text":
		render = harness.Text
	case "csv":
		render = harness.CSV
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown format %q\n", *format)
		os.Exit(2)
	}

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return
	}

	var sweep []int
	for _, part := range strings.Split(*threads, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "experiments: bad -threads entry %q\n", part)
			os.Exit(2)
		}
		sweep = append(sweep, n)
	}
	cfg := harness.Config{
		Scale:   *scale,
		Repeats: *repeats,
		Threads: sweep,
	}

	var exps []harness.Experiment
	if *run == "all" {
		exps = harness.Experiments()
	} else {
		e, err := harness.ByID(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(2)
		}
		exps = []harness.Experiment{e}
	}
	for i, e := range exps {
		if i > 0 {
			fmt.Println()
		}
		tbl, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		if err := tbl.Render(os.Stdout, render); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
}
