// Command experiments regenerates the paper's tables and figures on the
// Go reproduction.
//
// Usage:
//
//	experiments -run all
//	experiments -run fig3 -scale 2 -repeats 3 -threads 1,2,4,8,16
//	experiments -run stats -stats          # machine-readable counter dump
//	experiments -list
//
// Experiment IDs: table1, fig3, fig4, table2, table3, fig5, fig6,
// ablation-sync, ablation-stepcache, ablation-dmhp, ablation-sample,
// stats, sparse.
//
// With -stats, the rendered tables are replaced by a JSON array with one
// element per measurement — {"benchmark", "tool", "workers", "stats"} —
// where "stats" is the observability snapshot of that measurement's best
// run (see internal/stats.Snapshot for the schema).
//
// With -json, every measurement's wall time (ns/op), race-check count,
// and analytic footprint are additionally written to BENCH_<n>.json
// (smallest unused n), the benchmark artifact CI uploads per run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"spd3/internal/harness"
	"spd3/internal/stats"
)

// statsEntry is one element of the -stats JSON document.
type statsEntry struct {
	Benchmark string         `json:"benchmark"`
	Tool      string         `json:"tool"`
	Workers   int            `json:"workers"`
	Stats     stats.Snapshot `json:"stats"`
}

// benchEntry is one measurement in the BENCH_<n>.json artifact written
// by -json: the numbers CI archives per run so regressions show up as
// diffs between artifacts rather than rerun-and-eyeball.
type benchEntry struct {
	Benchmark string `json:"benchmark"`
	Tool      string `json:"tool"`
	Workers   int    `json:"workers"`
	// NsPerOp is the best-of-repeats wall time in nanoseconds.
	NsPerOp int64 `json:"ns_per_op"`
	// Checks is the number of race checks the run performed (CAS-path
	// outcomes plus mutex-path shadow operations).
	Checks int64 `json:"checks"`
	// FootprintBytes is the detector's analytic memory footprint.
	FootprintBytes int64 `json:"footprint_bytes"`
}

// benchArtifactPath picks the smallest unused BENCH_<n>.json name, so
// successive local runs accumulate instead of clobbering each other.
func benchArtifactPath() string {
	for n := 1; ; n++ {
		p := fmt.Sprintf("BENCH_%d.json", n)
		if _, err := os.Stat(p); os.IsNotExist(err) {
			return p
		}
	}
}

func main() {
	var (
		run      = flag.String("run", "all", "experiment id or 'all'")
		list     = flag.Bool("list", false, "list experiments and exit")
		scale    = flag.Float64("scale", 1, "problem-size multiplier")
		repeats  = flag.Int("repeats", 3, "runs per data point (smallest wins)")
		threads  = flag.String("threads", "1,2,4,8,16", "comma-separated worker sweep")
		format   = flag.String("format", "text", "output format: text | csv")
		emitJSON = flag.Bool("stats", false, "emit per-measurement observability snapshots as JSON instead of tables")
		benchOut = flag.Bool("json", false, "also write BENCH_<n>.json with every measurement's ns/op, check count, and footprint")
	)
	flag.Parse()

	var render harness.Format
	switch *format {
	case "text":
		render = harness.Text
	case "csv":
		render = harness.CSV
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown format %q\n", *format)
		os.Exit(2)
	}

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return
	}

	var sweep []int
	for _, part := range strings.Split(*threads, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "experiments: bad -threads entry %q\n", part)
			os.Exit(2)
		}
		sweep = append(sweep, n)
	}
	cfg := harness.Config{
		Scale:   *scale,
		Repeats: *repeats,
		Threads: sweep,
	}

	var collected []statsEntry
	out := io.Writer(os.Stdout)
	if *emitJSON {
		cfg.OnStats = func(benchmark string, tool harness.Tool, workers int, s stats.Snapshot) {
			collected = append(collected, statsEntry{
				Benchmark: benchmark,
				Tool:      string(tool),
				Workers:   workers,
				Stats:     s,
			})
		}
		// The tables would interleave with the JSON document; drop them.
		out = io.Discard
	}
	var benches []benchEntry
	if *benchOut {
		cfg.OnMeasure = func(benchmark string, tool harness.Tool, workers int, m harness.Measurement) {
			benches = append(benches, benchEntry{
				Benchmark: benchmark,
				Tool:      string(tool),
				Workers:   workers,
				NsPerOp:   m.Time.Nanoseconds(),
				Checks: m.Stats.Get(stats.CASClean) + m.Stats.Get(stats.CASPublish) +
					m.Stats.Get(stats.MutexOps),
				FootprintBytes: m.Footprint.Total(),
			})
		}
	}

	var exps []harness.Experiment
	if *run == "all" {
		exps = harness.Experiments()
	} else {
		e, err := harness.ByID(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(2)
		}
		exps = []harness.Experiment{e}
	}
	for i, e := range exps {
		if i > 0 {
			fmt.Fprintln(out)
		}
		tbl, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		if err := tbl.Render(out, render); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	if *emitJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(collected); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	if *benchOut {
		path := benchArtifactPath()
		data, err := json.MarshalIndent(benches, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "experiments: wrote %d measurements to %s\n", len(benches), path)
	}
}
