// Command spd3d is the networked trace-analysis daemon: it accepts
// traces recorded by spd3 -record (or any trace.Recorder) over HTTP and
// replays them into any detector from the detect registry.
//
// Usage:
//
//	spd3d -addr :7331
//	curl -fsS --data-binary @sor.trc 'http://127.0.0.1:7331/v1/analyze?detector=spd3'
//	curl -fsS --data-binary @sor.trc 'http://127.0.0.1:7331/v1/analyze?detector=all'
//	curl -fsS http://127.0.0.1:7331/v1/detectors
//	curl -fsS http://127.0.0.1:7331/statsz
//
// The async /v2 job API spills uploads into a content-addressed trace
// store and replays them in the background:
//
//	curl -fsS --data-binary @sor.trc 'http://127.0.0.1:7331/v2/jobs?detector=all'
//	curl -fsS http://127.0.0.1:7331/v2/jobs/<job_id>
//	curl -fsS http://127.0.0.1:7331/v2/jobs/<job_id>/result
//
// -store names the store directory (empty = a throwaway temp dir);
// pointing a restarted daemon at the same -store resumes interrupted
// jobs. -store-ttl and -gc-interval control how long finished jobs and
// their segments linger. The -tenant-* flags bound each tenant (keyed
// by the X-SPD3-Tenant header) independently: queued jobs, stored
// bytes, concurrent shard slots, and submitted byte rate.
//
// -sample sets a default check-sampling spec (mode:rate), -tenant-sample
// overrides it per tenant, and -overhead-budget hands each sampling
// governor a modeled overhead target to hold by adapting the rate
// online; a per-request sample= query parameter overrides both. The
// live per-tenant rates and sample.* counters surface in /statsz.
//
// The daemon bounds concurrent analyses (-inflight, 429 beyond it), caps
// upload size (-max-body, 413), enforces a per-request analysis deadline
// that cancels the running replay (-timeout, 504), and drains in-flight
// work before exiting on SIGINT/SIGTERM. Use cmd/spd3load to measure
// its service-level throughput and latency.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"spd3/internal/detect"
	_ "spd3/internal/detectors" // populate the detector registry
	"spd3/internal/sample"
	"spd3/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":7331", "listen address")
		inflight     = flag.Int("inflight", 0, "max concurrent analyses (0 = GOMAXPROCS); excess requests get 429")
		maxBodyMB    = flag.Int64("max-body-mb", 64, "trace upload cap in MiB; larger uploads get 413")
		timeout      = flag.Duration("timeout", 60*time.Second, "per-request analysis deadline (cancels the replay); negative disables")
		readTimeout  = flag.Duration("read-timeout", 30*time.Second, "HTTP read timeout")
		writeTimeout = flag.Duration("write-timeout", 2*time.Minute, "HTTP write timeout")
		drainWait    = flag.Duration("drain", 30*time.Second, "max wait for in-flight analyses on shutdown")
		races        = flag.Int("races", 256, "max races carried per JSON verdict")
		shardWorkers = flag.Int("shard-workers", 0, "max concurrent segment replays across the daemon (0 = GOMAXPROCS, negative disables sharding)")
		segMinKB     = flag.Int("segment-min-kb", 256, "coalesce finish-scope segments smaller than this many KiB")
		segMaxMB     = flag.Int("segment-max-mb", 32, "fall back to single-stream analysis when one finish scope exceeds this many MiB")
		quiet        = flag.Bool("quiet", false, "suppress per-analysis log lines")

		storeDir      = flag.String("store", "", "trace store directory for /v2 jobs (empty = throwaway temp dir; reuse a path to resume jobs across restarts)")
		storeTTL      = flag.Duration("store-ttl", time.Hour, "keep finished jobs and their segments this long (negative = forever)")
		gcInterval    = flag.Duration("gc-interval", 5*time.Minute, "store garbage-collection period (0 disables background GC)")
		tenantQueue   = flag.Int("tenant-queue", 0, "max queued+running jobs per tenant (0 = default 64, negative disables)")
		tenantStoreMB = flag.Int64("tenant-store-mb", 0, "max stored trace bytes per tenant in MiB (0 = default 4096, negative disables)")
		tenantShards  = flag.Int("tenant-shards", 0, "max shard-pool slots one tenant may hold (0 = pool size, negative disables)")
		tenantRateMB  = flag.Int64("tenant-rate-mb", 0, "per-tenant submitted-bytes rate limit in MiB/s (0 disables)")

		sampleSpec   = flag.String("sample", "", "default check-sampling spec for every tenant (mode:rate, e.g. bernoulli:0.01, page:0.05, burst:0.02; empty or off = check everything)")
		budgetSpec   = flag.String("overhead-budget", "", "sampling overhead budget for the governors (e.g. 5% or 0.05); empty freezes rates at their configured values")
		tenantSample = flag.String("tenant-sample", "", "per-tenant sampling overrides as tenant=spec[,tenant=spec...]")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "spd3d: ", log.LstdFlags)
	srvLog := logger
	if *quiet {
		srvLog = nil
	}
	tenantStore := *tenantStoreMB
	if tenantStore > 0 {
		tenantStore <<= 20
	}
	budget, err := sample.ParseBudget(*budgetSpec)
	if err != nil {
		logger.Fatalf("-overhead-budget: %v", err)
	}
	var tenantSpecs map[string]string
	if *tenantSample != "" {
		tenantSpecs = map[string]string{}
		for _, kv := range strings.Split(*tenantSample, ",") {
			tenant, spec, ok := strings.Cut(kv, "=")
			if !ok || tenant == "" {
				logger.Fatalf("-tenant-sample: %q is not tenant=spec", kv)
			}
			tenantSpecs[tenant] = spec
		}
	}
	srv, err := server.Open(server.Config{
		MaxInFlight:       *inflight,
		MaxBodyBytes:      *maxBodyMB << 20,
		RequestTimeout:    *timeout,
		MaxRacesPerReport: *races,
		ShardWorkers:      *shardWorkers,
		MinSegmentBytes:   *segMinKB << 10,
		MaxSegmentBytes:   *segMaxMB << 20,
		StoreDir:          *storeDir,
		StoreTTL:          *storeTTL,
		GCInterval:        *gcInterval,
		Quota: server.QuotaConfig{
			MaxQueuedJobs:   *tenantQueue,
			MaxStoredBytes:  tenantStore,
			TenantShards:    *tenantShards,
			RateBytesPerSec: *tenantRateMB << 20,
		},
		Sampling: server.SamplingConfig{
			Default: *sampleSpec,
			Budget:  budget,
			Tenants: tenantSpecs,
		},
		Log: srvLog,
	})
	if err != nil {
		logger.Fatal(err)
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatal(err)
	}
	hs := &http.Server{
		Handler:      srv.Handler(),
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
	}

	var names []string
	for _, d := range detect.Describe() {
		names = append(names, d.Name)
	}
	logger.Printf("listening on %s (detectors: %s)", ln.Addr(), strings.Join(names, ", "))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		logger.Fatal(err)
	case <-ctx.Done():
	}

	// Graceful shutdown: refuse new analyses (503), let in-flight ones
	// finish, then close the listener and idle connections.
	logger.Printf("shutting down: draining %d in-flight analyses", srv.InFlight())
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		logger.Printf("drain: %v (abandoning in-flight analyses)", err)
	}
	if err := hs.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("shutdown: %v", err)
	}
	fmt.Fprintln(os.Stderr, "spd3d: bye")
}
