package main

import (
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"spd3"
	"spd3/internal/analysis"
	"spd3/internal/analysis/checkelim"
	"spd3/internal/progen"
)

// TestProgenElisionDifferential is the scale half of the checkelim
// validation: 150 random async/finish/lock/loop programs are rendered
// as instrumented Go source, the eliminator computes their elision
// sets from that source, and each program is then interpreted twice
// under the sequential executor — all checks vs the elision set
// applied (elided sites use Unchecked forms; hoisted reads check once
// at loop entry). Default rules must preserve the verdict AND the race
// digest byte for byte; the opt-in writedom rule must preserve the
// verdict.
func TestProgenElisionDifferential(t *testing.T) {
	const seeds = 150
	cfg := progen.Config{Vars: 3, MaxDepth: 4, MaxStmts: 30, Locks: 1, Loops: true}
	progs := make([]*progen.Program, seeds)
	for i := range progs {
		progs[i] = progen.Generate(int64(i)+1, cfg)
	}
	src, siteLines := progen.RenderGoFile("progenprogs", progs)

	dir, err := os.MkdirTemp("testdata", "progen-")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	if err := os.WriteFile(filepath.Join(dir, "progen.go"), src, 0o644); err != nil {
		t.Fatal(err)
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.TypeErrors) != 0 {
		t.Fatalf("rendered progen source does not type-check: %v", pkg.TypeErrors[0])
	}

	// Invert the per-program site→line maps so an elision's position
	// identifies its (program, site).
	type loc struct{ prog, site int }
	lineSite := make(map[int]loc)
	for pi, m := range siteLines {
		for site, line := range m {
			lineSite[line] = loc{pi, site}
		}
	}
	elisionSets := func(res *checkelim.Result) []map[int]checkelim.Rule {
		sets := make([]map[int]checkelim.Rule, len(progs))
		for i := range sets {
			sets[i] = make(map[int]checkelim.Rule)
		}
		for _, e := range res.Elisions {
			line := pkg.Fset.Position(e.Pos).Line
			l, ok := lineSite[line]
			if !ok {
				t.Fatalf("elision at line %d maps to no access site", line)
			}
			sets[l.prog][l.site] = e.Rule
		}
		return sets
	}

	res, err := checkelim.Analyze(pkg, checkelim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sets := elisionSets(res)
	total := 0
	for _, s := range sets {
		total += len(s)
	}
	if total == 0 {
		t.Fatal("150 seeds produced no elisions; the differential is vacuous")
	}
	t.Logf("default rules: %d elisions across %d seeds (%v)", total, seeds, res.Counts())

	for pi, p := range progs {
		base := interpret(t, p, nil)
		opt := interpret(t, p, sets[pi])
		if base != opt {
			t.Errorf("seed %d: elision changed the outcome\nbase: %+v\nopt:  %+v\nelided: %v\nprogram:\n%s",
				pi+1, base, opt, sets[pi], p)
		}
	}

	// The writedom rule is verdict-preserving but not digest-preserving
	// (an elided read records no reader slot, so a later writer's race
	// may be attributed to the dominating write instead): compare
	// verdicts only.
	resWD, err := checkelim.Analyze(pkg, checkelim.Options{WriteDom: true})
	if err != nil {
		t.Fatal(err)
	}
	setsWD := elisionSets(resWD)
	for pi, p := range progs {
		base := interpret(t, p, nil)
		opt := interpret(t, p, setsWD[pi])
		if base.racy != opt.racy {
			t.Errorf("seed %d: writedom elision changed the verdict from %v to %v\nelided: %v\nprogram:\n%s",
				pi+1, base.racy, opt.racy, setsWD[pi], p)
		}
	}
}

type outcome struct {
	racy   bool
	digest string
}

// interpret executes p against the public spd3 API under the
// sequential executor, applying the given elision set: dup/writedom
// sites access unchecked, hoisted sites are checked once at their
// innermost loop's entry (mirroring the hoisted declaration the fix
// inserts) and unchecked inside the body.
func interpret(t *testing.T, p *progen.Program, elided map[int]checkelim.Rule) outcome {
	t.Helper()
	eng, err := spd3.New(spd3.Options{Executor: spd3.Sequential})
	if err != nil {
		t.Fatal(err)
	}
	v := spd3.NewArray[int](eng, "v", p.Vars)
	mus := make([]*spd3.Mutex, p.Locks)
	for i := range mus {
		mus[i] = spd3.NewMutex(eng)
	}

	// Per-loop pre-check lists: hoisted read sites, innermost loop.
	hoistPre := make(map[*progen.Node][]*progen.Node)
	var scan func(n, cur *progen.Node)
	scan = func(n, cur *progen.Node) {
		if n.Op == progen.Loop {
			cur = n
		}
		if n.Op == progen.Read && elided[n.Site] == checkelim.RuleHoist {
			if cur == nil {
				t.Fatalf("hoist elision of site %d outside any loop", n.Site)
			}
			hoistPre[cur] = append(hoistPre[cur], n)
		}
		for _, ch := range n.Children {
			scan(ch, cur)
		}
	}
	scan(p.Root, nil)

	var exec func(c *spd3.Ctx, ns []*progen.Node)
	var node func(c *spd3.Ctx, n *progen.Node)
	node = func(c *spd3.Ctx, n *progen.Node) {
		switch n.Op {
		case progen.Seq:
			exec(c, n.Children)
		case progen.Async:
			c.Async(func(c *spd3.Ctx) { exec(c, n.Children) })
		case progen.Finish:
			c.Finish(func(c *spd3.Ctx) { exec(c, n.Children) })
		case progen.Locked:
			mus[n.Var].Lock(c)
			exec(c, n.Children)
			mus[n.Var].Unlock(c)
		case progen.Loop:
			for _, a := range hoistPre[n] {
				_ = v.Get(c, a.Var)
			}
			for i := 0; i < n.Var; i++ {
				exec(c, n.Children)
			}
		case progen.Read:
			if _, ok := elided[n.Site]; ok {
				_ = v.Unchecked()[n.Var]
			} else {
				_ = v.Get(c, n.Var)
			}
		case progen.Write:
			if _, ok := elided[n.Site]; ok {
				v.Unchecked()[n.Var] = n.Site
			} else {
				v.Set(c, n.Var, n.Site)
			}
		}
	}
	exec = func(c *spd3.Ctx, ns []*progen.Node) {
		for _, n := range ns {
			node(c, n)
		}
	}

	rep, err := eng.Run(func(c *spd3.Ctx) { exec(c, p.Root.Children) })
	if err != nil {
		t.Fatalf("seed %d: run: %v", p.Seed, err)
	}
	set := make(map[string]struct{})
	for _, rc := range rep.Races {
		set[fmt.Sprintf("spd3/%s/%s/%d", rc.Kind, rc.Region, rc.Index)] = struct{}{}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		fmt.Fprintln(h, k)
	}
	return outcome{racy: !rep.RaceFree(), digest: fmt.Sprintf("%x", h.Sum(nil))}
}
