package main

import (
	"fmt"
	"io"
	"strings"
)

// splitLines splits s into lines, each keeping its trailing newline so
// the diff round-trips byte-exact content.
func splitLines(s string) []string {
	if s == "" {
		return nil
	}
	lines := strings.SplitAfter(s, "\n")
	if lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1]
	}
	return lines
}

// diffOp is one line-level edit: ' ' keep, '-' delete, '+' insert.
type diffOp struct {
	kind byte
	line string
}

// diffLines computes a line diff via longest-common-subsequence. The
// inputs here are single source files, so quadratic DP is fine.
func diffLines(a, b []string) []diffOp {
	n, m := len(a), len(b)
	lcs := make([][]int, n+1)
	for i := range lcs {
		lcs[i] = make([]int, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if a[i] == b[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}
	var ops []diffOp
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case a[i] == b[j]:
			ops = append(ops, diffOp{' ', a[i]})
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			ops = append(ops, diffOp{'-', a[i]})
			i++
		default:
			ops = append(ops, diffOp{'+', b[j]})
			j++
		}
	}
	for ; i < n; i++ {
		ops = append(ops, diffOp{'-', a[i]})
	}
	for ; j < m; j++ {
		ops = append(ops, diffOp{'+', b[j]})
	}
	return ops
}

// writeUnified prints ops in unified-diff hunks with 3 lines of
// context, after the caller has written the ---/+++ header.
func writeUnified(w io.Writer, a, b []string) {
	const ctx = 3
	ops := diffLines(a, b)

	// Mark which ops land in a hunk: every change plus ctx keeps around it.
	keep := make([]bool, len(ops))
	for i, op := range ops {
		if op.kind == ' ' {
			continue
		}
		lo := i - ctx
		if lo < 0 {
			lo = 0
		}
		hi := i + ctx
		if hi >= len(ops) {
			hi = len(ops) - 1
		}
		for k := lo; k <= hi; k++ {
			keep[k] = true
		}
	}

	aLine, bLine := 1, 1
	i := 0
	for i < len(ops) {
		if !keep[i] {
			if ops[i].kind != '+' {
				aLine++
			}
			if ops[i].kind != '-' {
				bLine++
			}
			i++
			continue
		}
		// Hunk: run of kept ops.
		j := i
		aCount, bCount := 0, 0
		for j < len(ops) && keep[j] {
			if ops[j].kind != '+' {
				aCount++
			}
			if ops[j].kind != '-' {
				bCount++
			}
			j++
		}
		fmt.Fprintf(w, "@@ -%d,%d +%d,%d @@\n", aLine, aCount, bLine, bCount)
		for k := i; k < j; k++ {
			op := ops[k]
			fmt.Fprintf(w, "%c%s", op.kind, op.line)
			if !strings.HasSuffix(op.line, "\n") {
				fmt.Fprintf(w, "\n\\ No newline at end of file\n")
			}
			if op.kind != '+' {
				aLine++
			}
			if op.kind != '-' {
				bLine++
			}
		}
		i = j
	}
}
