// Twin: parallel word count into one shared map with no lock. Tasks
// that see the same word race on its counter (and on the map's size),
// so the instrumented run must come back racy.
package main

import (
	"crypto/sha256"
	"fmt"
	"sort"

	"spd3"
)

func main() {
	eng, err := spd3.New(spd3.Options{Executor: spd3.Sequential})
	if err != nil {
		panic(err)
	}
	words := []string{"go", "race", "go", "detect", "race", "go"}
	counts := make(map[string]int)
	rep, err := eng.Run(func(c *spd3.Ctx) {
		c.FinishAsync(len(words), func(c *spd3.Ctx, i int) {
			counts[words[i]]++
		})
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("distinct:", len(counts), "go:", counts["go"])
	report("spd3", rep)
}

// report prints the verdict and a digest over the sorted deduplicated
// race set, in the same detector/kind/region/index shape spd3load uses.
func report(det string, rep *spd3.Report) {
	set := make(map[string]struct{})
	for _, rc := range rep.Races {
		set[fmt.Sprintf("%s/%s/%s/%d", det, rc.Kind, rc.Region, rc.Index)] = struct{}{}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		fmt.Fprintln(h, k)
	}
	fmt.Printf("racy: %v\ndigest: %x\n", !rep.RaceFree(), h.Sum(nil))
}
