// Twin: two sibling tasks increment one shared counter inside a
// finish with no synchronization — the classic async/finish race.
package main

import (
	"crypto/sha256"
	"fmt"
	"sort"

	"spd3"
)

func main() {
	eng, err := spd3.New(spd3.Options{Executor: spd3.Sequential})
	if err != nil {
		panic(err)
	}
	n := 0
	rep, err := eng.Run(func(c *spd3.Ctx) {
		c.Finish(func(c *spd3.Ctx) {
			c.Async(func(c *spd3.Ctx) {
				for i := 0; i < 100; i++ {
					n++
				}
			})
			c.Async(func(c *spd3.Ctx) {
				for i := 0; i < 100; i++ {
					n++
				}
			})
		})
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("count:", n)
	report("spd3", rep)
}

// report prints the verdict and a digest over the sorted deduplicated
// race set, in the same detector/kind/region/index shape spd3load uses.
func report(det string, rep *spd3.Report) {
	set := make(map[string]struct{})
	for _, rc := range rep.Races {
		set[fmt.Sprintf("%s/%s/%s/%d", det, rc.Kind, rc.Region, rc.Index)] = struct{}{}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		fmt.Fprintln(h, k)
	}
	fmt.Printf("racy: %v\ndigest: %x\n", !rep.RaceFree(), h.Sum(nil))
}
