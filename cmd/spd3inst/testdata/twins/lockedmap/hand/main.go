// Twin: mutex-guarded shared map under FastTrack, hand-instrumented.
// Must behave exactly like the spd3inst rewrite of ../plain.
package main

import (
	"crypto/sha256"
	"fmt"
	"sort"

	"spd3"
)

func main() {
	eng, err := spd3.New(spd3.Options{Executor: spd3.Sequential, Detector: spd3.FastTrack})
	if err != nil {
		panic(err)
	}
	words := []string{"go", "race", "go", "detect", "race", "go"}
	counts := spd3.NewMap[string, int](eng, "main.counts")
	mu := spd3.NewMutex(eng)
	rep, err := eng.Run(func(c *spd3.Ctx) {
		c.FinishAsync(len(words), func(c *spd3.Ctx, i int) {
			mu.Lock(c)
			counts.Update(c, words[i], func(old int) int { return old + 1 })
			mu.Unlock(c)
		})
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("distinct:", len(counts.Unchecked()), "go:", counts.Unchecked()["go"])
	report("fasttrack", rep)
}

// report prints the verdict and a digest over the sorted deduplicated
// race set, in the same detector/kind/region/index shape spd3load uses.
func report(det string, rep *spd3.Report) {
	set := make(map[string]struct{})
	for _, rc := range rep.Races {
		set[fmt.Sprintf("%s/%s/%s/%d", det, rc.Kind, rc.Region, rc.Index)] = struct{}{}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		fmt.Fprintln(h, k)
	}
	fmt.Printf("racy: %v\ndigest: %x\n", !rep.RaceFree(), h.Sum(nil))
}
