// Twin: mutex-guarded shared map under the FastTrack detector. The
// lock orders every update, so the run is quiet — but only if the
// rewrite converts the sync.Mutex into an instrumented spd3.Mutex so
// FastTrack sees the release→acquire edges.
package main

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"sync"

	"spd3"
)

func main() {
	eng, err := spd3.New(spd3.Options{Executor: spd3.Sequential, Detector: spd3.FastTrack})
	if err != nil {
		panic(err)
	}
	words := []string{"go", "race", "go", "detect", "race", "go"}
	counts := make(map[string]int)
	var mu sync.Mutex
	rep, err := eng.Run(func(c *spd3.Ctx) {
		c.FinishAsync(len(words), func(c *spd3.Ctx, i int) {
			mu.Lock()
			counts[words[i]]++
			mu.Unlock()
		})
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("distinct:", len(counts), "go:", counts["go"])
	report("fasttrack", rep)
}

// report prints the verdict and a digest over the sorted deduplicated
// race set, in the same detector/kind/region/index shape spd3load uses.
func report(det string, rep *spd3.Report) {
	set := make(map[string]struct{})
	for _, rc := range rep.Races {
		set[fmt.Sprintf("%s/%s/%s/%d", det, rc.Kind, rc.Region, rc.Index)] = struct{}{}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		fmt.Fprintln(h, k)
	}
	fmt.Printf("racy: %v\ndigest: %x\n", !rep.RaceFree(), h.Sum(nil))
}
