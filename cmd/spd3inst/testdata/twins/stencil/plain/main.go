// Twin: in-place Jacobi-style grid relaxation with a shared scale
// factor. The relax phase updates grid[i][j] while neighbor rows are
// read by other tasks, so the instrumented run must flag races on the
// grid. The scale factor is written in an earlier phase (joined by its
// finish) and only read afterwards, so it stays race-free. The relax
// statement re-reads grid[i][j] and scale redundantly on purpose: the
// checkelim post-pass must elide the duplicate grid read and hoist the
// loop-invariant scale reads without changing verdict or digest.
package main

import (
	"crypto/sha256"
	"fmt"
	"sort"

	"spd3"
)

func main() {
	eng, err := spd3.New(spd3.Options{Executor: spd3.Sequential})
	if err != nil {
		panic(err)
	}
	const n = 8
	grid := make([][]float64, n)
	for i := 0; i < n; i++ {
		grid[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			grid[i][j] = float64((i*j)%5) * 0.5
		}
	}
	scale := 0.5
	rep, err := eng.Run(func(c *spd3.Ctx) {
		c.FinishAsync(2, func(c *spd3.Ctx, t int) {
			if t == 0 {
				scale = 0.25
			}
		})
		c.ParallelFor(1, n-1, 1, func(c *spd3.Ctx, i int) {
			for j := 1; j < n-1; j++ {
				avg := (grid[i-1][j] + grid[i+1][j]) * scale
				grid[i][j] = grid[i][j] - scale*(grid[i][j]-avg)
			}
		})
	})
	if err != nil {
		panic(err)
	}
	s := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s += grid[i][j]
		}
	}
	fmt.Println("check:", s)
	report("spd3", rep)
}

// report prints the verdict and a digest over the sorted deduplicated
// race set, in the same detector/kind/region/index shape spd3load uses.
func report(det string, rep *spd3.Report) {
	set := make(map[string]struct{})
	for _, rc := range rep.Races {
		set[fmt.Sprintf("%s/%s/%s/%d", det, rc.Kind, rc.Region, rc.Index)] = struct{}{}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		fmt.Fprintln(h, k)
	}
	fmt.Printf("racy: %v\ndigest: %x\n", !rep.RaceFree(), h.Sum(nil))
}
