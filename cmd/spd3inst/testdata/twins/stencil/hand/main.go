// Twin: in-place grid relaxation, hand-instrumented. Must behave
// exactly like the spd3inst rewrite of ../plain — same container
// names, same access pattern, same verdict and race digest — whether
// or not the rewrite was then optimized by the checkelim post-pass.
package main

import (
	"crypto/sha256"
	"fmt"
	"sort"

	"spd3"
)

func main() {
	eng, err := spd3.New(spd3.Options{Executor: spd3.Sequential})
	if err != nil {
		panic(err)
	}
	const n = 8
	grid := spd3.NewMatrix[float64](eng, "main.grid", n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			grid.UncheckedRow(i)[j] = float64((i*j)%5) * 0.5
		}
	}
	scale := spd3.NewVar[float64](eng, "main.scale", 0.5)
	rep, err := eng.Run(func(c *spd3.Ctx) {
		c.FinishAsync(2, func(c *spd3.Ctx, t int) {
			if t == 0 {
				scale.Set(c, 0.25)
			}
		})
		c.ParallelFor(1, n-1, 1, func(c *spd3.Ctx, i int) {
			for j := 1; j < n-1; j++ {
				avg := (grid.Get(c, i-1, j) + grid.Get(c, i+1, j)) * scale.Get(c)
				grid.Set(c, i, j, grid.Get(c, i, j)-scale.Get(c)*(grid.Get(c, i, j)-avg))
			}
		})
	})
	if err != nil {
		panic(err)
	}
	s := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s += grid.UncheckedRow(i)[j]
		}
	}
	fmt.Println("check:", s)
	report("spd3", rep)
}

// report prints the verdict and a digest over the sorted deduplicated
// race set, in the same detector/kind/region/index shape spd3load uses.
func report(det string, rep *spd3.Report) {
	set := make(map[string]struct{})
	for _, rc := range rep.Races {
		set[fmt.Sprintf("%s/%s/%s/%d", det, rc.Kind, rc.Region, rc.Index)] = struct{}{}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		fmt.Fprintln(h, k)
	}
	fmt.Printf("racy: %v\ndigest: %x\n", !rep.RaceFree(), h.Sum(nil))
}
