// Twin: squared vector norm with an unsynchronized shared accumulator.
// Every worker does sum += ... with no ordering, so the instrumented
// run must flag races on the accumulator. The input slice is only read
// by tasks and stays plain.
package main

import (
	"crypto/sha256"
	"fmt"
	"sort"

	"spd3"
)

func main() {
	eng, err := spd3.New(spd3.Options{Executor: spd3.Sequential})
	if err != nil {
		panic(err)
	}
	data := make([]float64, 64)
	for i := range data {
		data[i] = float64(i % 7)
	}
	sum := 0.0
	rep, err := eng.Run(func(c *spd3.Ctx) {
		c.FinishAsync(4, func(c *spd3.Ctx, p int) {
			for i := p; i < len(data); i += 4 {
				sum += data[i] * data[i]
			}
		})
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("norm2:", sum)
	report("spd3", rep)
}

// report prints the verdict and a digest over the sorted deduplicated
// race set, in the same detector/kind/region/index shape spd3load uses.
func report(det string, rep *spd3.Report) {
	set := make(map[string]struct{})
	for _, rc := range rep.Races {
		set[fmt.Sprintf("%s/%s/%s/%d", det, rc.Kind, rc.Region, rc.Index)] = struct{}{}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		fmt.Fprintln(h, k)
	}
	fmt.Printf("racy: %v\ndigest: %x\n", !rep.RaceFree(), h.Sum(nil))
}
