// Twin: dense matrix multiply. Writes are disjoint per (i,j), so the
// instrumented run must certify the program race-free. Plain shared
// data — spd3inst turns out into a Matrix; a and b are only read by
// tasks and stay plain.
package main

import (
	"crypto/sha256"
	"fmt"
	"sort"

	"spd3"
)

func main() {
	eng, err := spd3.New(spd3.Options{Executor: spd3.Sequential})
	if err != nil {
		panic(err)
	}
	const n = 4
	a := make([][]float64, n)
	for i := 0; i < n; i++ {
		a[i] = make([]float64, n)
	}
	b := make([][]float64, n)
	for i := 0; i < n; i++ {
		b[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a[i][j] = float64(i + j)
			b[i][j] = float64(i - j)
		}
	}
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		out[i] = make([]float64, n)
	}
	rep, err := eng.Run(func(c *spd3.Ctx) {
		c.ParallelFor(0, n, 1, func(c *spd3.Ctx, i int) {
			for j := 0; j < n; j++ {
				s := 0.0
				for k := 0; k < n; k++ {
					s += a[i][k] * b[k][j]
				}
				out[i][j] = s
			}
		})
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("check:", out[1][2])
	report("spd3", rep)
}

// report prints the verdict and a digest over the sorted deduplicated
// race set, in the same detector/kind/region/index shape spd3load uses.
func report(det string, rep *spd3.Report) {
	set := make(map[string]struct{})
	for _, rc := range rep.Races {
		set[fmt.Sprintf("%s/%s/%s/%d", det, rc.Kind, rc.Region, rc.Index)] = struct{}{}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		fmt.Fprintln(h, k)
	}
	fmt.Printf("racy: %v\ndigest: %x\n", !rep.RaceFree(), h.Sum(nil))
}
