// Command spd3inst rewrites plain Go programs that already use the
// spd3 task structure (Engine.Run, Ctx.Async/Finish/ParallelFor) but
// plain shared data into instrumented spd3 programs: shared slices
// become spd3.Array, [][]T becomes spd3.Matrix, scalars become
// spd3.Var, maps become spd3.Map, and sync.Mutex becomes spd3.Mutex.
// Task-local data is left alone, and variables the rewrite cannot
// handle soundly are annotated with a //spd3inst:skip directive and
// reported instead of silently half-instrumented.
//
// Usage:
//
//	spd3inst ./...          # report proposed rewrites, exit 1 if any
//	spd3inst -diff ./...    # unified diff of the proposed rewrites
//	spd3inst -w ./...       # rewrite files in place
//	spd3inst -o dir ./pkg   # write the full rewritten package into dir
//	spd3inst -json ./...    # machine-readable envelope
//
// A variable can be excluded by hand with a directive on (or one line
// above) its declaration:
//
//	//spd3inst:skip <reason>
//
// In -o mode the rewritten package is then optimized by the §5.5
// static check eliminator (internal/analysis/checkelim): checked
// accesses whose verdict is provably implied by an earlier same-step
// access are downgraded to unchecked forms under //spd3opt:elided
// markers, and the elided-site count is stamped into a generated
// zz_spd3opt.go so it surfaces in every Report.Stats as
// mem.checks_elided_static. -no-elide turns the post-pass off.
//
// Exit status: 0 when nothing needs rewriting (or after a successful
// -w/-o), 1 when rewrites are pending in report modes, 2 on usage or
// load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"spd3/internal/analysis"
	"spd3/internal/analysis/checkelim"
	"spd3/internal/analysis/rewrite"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// pkgResult pairs one loaded package with its rewrite outcome.
type pkgResult struct {
	pkg *analysis.Package
	res *rewrite.Result
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("spd3inst", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		diffOut = fs.Bool("diff", false, "print a unified diff of the proposed rewrites")
		write   = fs.Bool("w", false, "rewrite files in place")
		outDir  = fs.String("o", "", "write the full rewritten package (changed and unchanged files) into `dir`")
		jsonOut = fs.Bool("json", false, "emit the result as a JSON envelope")
		noElide = fs.Bool("no-elide", false, "disable the static check-elimination post-pass in -o mode")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	modes := 0
	for _, on := range []bool{*diffOut, *write, *outDir != ""} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		fmt.Fprintln(stderr, "spd3inst: -diff, -w and -o are mutually exclusive")
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(stderr, "spd3inst:", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "spd3inst:", err)
		return 2
	}
	if *outDir != "" && len(pkgs) != 1 {
		fmt.Fprintf(stderr, "spd3inst: -o needs exactly one package, got %d\n", len(pkgs))
		return 2
	}

	var results []pkgResult
	changed := 0
	for _, pkg := range pkgs {
		res, err := rewrite.Rewrite(pkg)
		if err != nil {
			fmt.Fprintln(stderr, "spd3inst:", err)
			return 2
		}
		changed += len(res.Files)
		results = append(results, pkgResult{pkg, res})
	}

	switch {
	case *write:
		for _, pr := range results {
			for name, content := range pr.res.Files {
				if err := os.WriteFile(name, content, 0o644); err != nil {
					fmt.Fprintln(stderr, "spd3inst:", err)
					return 2
				}
			}
		}
		reportSkips(stderr, loader, results)
		if *jsonOut {
			return emitJSON(stdout, stderr, loader, results, 0, nil)
		}
		if changed > 0 {
			fmt.Fprintf(stderr, "spd3inst: rewrote %d file(s)\n", changed)
		}
		return 0

	case *outDir != "":
		pr := results[0]
		if err := writePackage(*outDir, pr.pkg, pr.res); err != nil {
			fmt.Fprintln(stderr, "spd3inst:", err)
			return 2
		}
		var elide *elideOutcome
		if !*noElide {
			elide, err = elidePackage(*outDir)
			if err != nil {
				fmt.Fprintln(stderr, "spd3inst:", err)
				return 2
			}
			if n := len(elide.res.Elisions); n > 0 {
				fmt.Fprintf(stderr, "spd3inst: statically elided %d redundant check(s)\n", n)
			}
		}
		reportSkips(stderr, loader, results)
		if *jsonOut {
			return emitJSON(stdout, stderr, loader, results, 0, elide)
		}
		return 0

	case *diffOut:
		for _, pr := range results {
			for _, name := range sortedFiles(pr.res) {
				old, err := os.ReadFile(name)
				if err != nil {
					fmt.Fprintln(stderr, "spd3inst:", err)
					return 2
				}
				fmt.Fprintf(stdout, "--- %s\n+++ %s\n", display(name), display(name))
				writeUnified(stdout, splitLines(string(old)), splitLines(string(pr.res.Files[name])))
			}
		}
		if changed > 0 {
			return 1
		}
		return 0

	default:
		if *jsonOut {
			code := 0
			if changed > 0 {
				code = 1
			}
			return emitJSON(stdout, stderr, loader, results, code, nil)
		}
		for _, pr := range results {
			for _, rw := range pr.res.Rewritten {
				fmt.Fprintf(stdout, "%s: rewrite %s -> spd3.%s %q\n",
					position(loader, rw.Pos), rw.Var, rw.Kind, rw.Container)
			}
			for _, sk := range pr.res.Skips {
				fmt.Fprintf(stdout, "%s: skip %s: %s\n", position(loader, sk.Pos), sk.Var, sk.Reason)
			}
		}
		if changed > 0 {
			fmt.Fprintf(stderr, "spd3inst: %d file(s) need rewriting (use -w or -diff)\n", changed)
			return 1
		}
		return 0
	}
}

// elideOutcome pairs the checkelim post-pass result with the file set
// that produced it (positions in the result belong to the post-pass
// loader over the output directory, not the driver's input loader).
type elideOutcome struct {
	res  *checkelim.Result
	fset *token.FileSet
}

// elidePackage runs the §5.5 static check eliminator over the freshly
// written output directory: it reloads the rewritten package, applies
// the default (digest-preserving) elision fixes in place, and stamps
// the elided-site count into a generated zz_spd3opt.go whose init
// registers it with the runtime (mem.checks_elided_static).
func elidePackage(dir string) (*elideOutcome, error) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		return nil, err
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		return nil, err
	}
	if len(pkg.TypeErrors) > 0 {
		return nil, fmt.Errorf("rewritten package does not type-check: %v", pkg.TypeErrors[0])
	}
	res, err := checkelim.Analyze(pkg, checkelim.Options{})
	if err != nil {
		return nil, err
	}
	if n := len(res.Elisions); n > 0 {
		if _, _, err := analysis.ApplyFixes(pkg.Fset, res.Diags); err != nil {
			return nil, err
		}
		if err := stampElided(dir, pkg.Types.Name(), n); err != nil {
			return nil, err
		}
	}
	return &elideOutcome{res: res, fset: pkg.Fset}, nil
}

// stampElided writes the generated zz_spd3opt.go recording how many
// check sites the eliminator removed, so the optimized package reports
// the count at runtime through Report.Stats.
func stampElided(dir, pkgName string, n int) error {
	src := fmt.Sprintf(`// Code generated by spd3inst; DO NOT EDIT.

package %s

import "spd3"

// spd3optElidedStatic is the number of container access sites in this
// package whose dynamic race checks were removed at compile time by
// the §5.5 static check eliminator (//spd3opt:elided markers).
const spd3optElidedStatic = %d

func init() { spd3.RegisterStaticElided(spd3optElidedStatic) }
`, pkgName, n)
	return os.WriteFile(filepath.Join(dir, "zz_spd3opt.go"), []byte(src), 0o644)
}

// writePackage materializes the full rewritten package — changed files
// from the result, unchanged files copied from disk — into dir.
func writePackage(dir string, pkg *analysis.Package, res *rewrite.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	entries, err := os.ReadDir(pkg.Dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		src := filepath.Join(pkg.Dir, e.Name())
		content, ok := res.Files[src]
		if !ok {
			if content, err = os.ReadFile(src); err != nil {
				return err
			}
		}
		if err := os.WriteFile(filepath.Join(dir, e.Name()), content, 0o644); err != nil {
			return err
		}
	}
	return nil
}

func reportSkips(stderr io.Writer, loader *analysis.Loader, results []pkgResult) {
	for _, pr := range results {
		for _, sk := range pr.res.Skips {
			fmt.Fprintf(stderr, "%s: skip %s: %s\n", position(loader, sk.Pos), sk.Var, sk.Reason)
		}
	}
}

// position renders a token.Pos as a cwd-relative file:line:col string.
func position(loader *analysis.Loader, pos token.Pos) string {
	p := loader.Fset.Position(pos)
	return fmt.Sprintf("%s:%d:%d", display(p.Filename), p.Line, p.Column)
}

func sortedFiles(res *rewrite.Result) []string {
	names := make([]string, 0, len(res.Files))
	for name := range res.Files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// display shortens an absolute filename to cwd-relative when possible.
func display(name string) string {
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
			return rel
		}
	}
	return name
}

// jsonEnvelope is the -json output shape, mirroring spd3vet's envelope.
type jsonEnvelope struct {
	Tool     string        `json:"tool"`
	Version  string        `json:"version"`
	Packages []jsonPackage `json:"packages"`
}

type jsonPackage struct {
	Package   string          `json:"package"`
	Files     []string        `json:"files"`
	Rewritten []jsonRewritten `json:"rewritten"`
	Skips     []jsonSkip      `json:"skips"`
	// Elided counts the checks removed by the -o post-pass, per
	// checkelim rule ("dup", "hoist"); absent outside -o or with
	// -no-elide. ElideSkips are candidate accesses the eliminator
	// proved it could NOT remove, with the reason — the aggregate a
	// corpus sweep reads to see how much §5.5 buys and what blocks it.
	Elided     map[string]int  `json:"elided,omitempty"`
	ElideSkips []jsonElideSkip `json:"elide_skips,omitempty"`
}

type jsonRewritten struct {
	Var       string `json:"var"`
	Container string `json:"container"`
	Kind      string `json:"kind"`
	Pos       string `json:"pos"`
}

type jsonSkip struct {
	Var    string `json:"var"`
	Reason string `json:"reason"`
	Pos    string `json:"pos"`
}

type jsonElideSkip struct {
	Rule   string `json:"rule"`
	Reason string `json:"reason"`
	Pos    string `json:"pos"`
}

func emitJSON(stdout, stderr io.Writer, loader *analysis.Loader, results []pkgResult, code int, elide *elideOutcome) int {
	env := jsonEnvelope{Tool: "spd3inst", Version: analysis.Version}
	for _, pr := range results {
		jp := jsonPackage{
			Package:   pr.res.Package,
			Files:     []string{},
			Rewritten: []jsonRewritten{},
			Skips:     []jsonSkip{},
		}
		for _, name := range sortedFiles(pr.res) {
			jp.Files = append(jp.Files, display(name))
		}
		for _, rw := range pr.res.Rewritten {
			jp.Rewritten = append(jp.Rewritten, jsonRewritten{
				Var: rw.Var, Container: rw.Container, Kind: rw.Kind,
				Pos: position(loader, rw.Pos),
			})
		}
		for _, sk := range pr.res.Skips {
			jp.Skips = append(jp.Skips, jsonSkip{
				Var: sk.Var, Reason: sk.Reason, Pos: position(loader, sk.Pos),
			})
		}
		// -o analyzes exactly one package; the post-pass outcome, when
		// present, belongs to it.
		if elide != nil {
			jp.Elided = elide.res.Counts()
			jp.ElideSkips = []jsonElideSkip{}
			for _, s := range elide.res.Skips {
				p := elide.fset.Position(s.Pos)
				jp.ElideSkips = append(jp.ElideSkips, jsonElideSkip{
					Rule:   string(s.Rule),
					Reason: s.Reason,
					Pos:    fmt.Sprintf("%s:%d:%d", display(p.Filename), p.Line, p.Column),
				})
			}
		}
		env.Packages = append(env.Packages, jp)
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(env); err != nil {
		fmt.Fprintln(stderr, "spd3inst:", err)
		return 2
	}
	return code
}
