package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The twin benchmarks: each has a plain version (spd3 task structure,
// plain shared data) and a hand-instrumented version using the same
// container names. spd3inst rewrites the plain one; both are then run
// and must agree byte-for-byte — same computed values, same race
// verdict, same digest over the sorted race set.
var twins = []struct {
	name string
	racy bool
}{
	{"matmul", false},
	{"vecnorm", true},
	{"counter", true},
	{"wordcount", true},
	{"lockedmap", false},
}

var racyLine = regexp.MustCompile(`(?m)^racy: (true|false)$`)

// goRun builds and runs the main package in dir, returning its stdout.
func goRun(t *testing.T, dir string) string {
	t.Helper()
	cmd := exec.Command("go", "run", ".")
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("go run %s: %v\n%s", dir, err, &stderr)
	}
	return stdout.String()
}

func TestDifferentialTwins(t *testing.T) {
	for _, tw := range twins {
		t.Run(tw.name, func(t *testing.T) {
			plain := filepath.Join("testdata", "twins", tw.name, "plain")
			hand := filepath.Join("testdata", "twins", tw.name, "hand")

			// Generated packages must live inside the module so the
			// spd3 import resolves under go run; testdata keeps them
			// out of ./... builds.
			gen, err := os.MkdirTemp("testdata", "gen-"+tw.name+"-")
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { os.RemoveAll(gen) })

			var stdout, stderr bytes.Buffer
			if code := run([]string{"-o", gen, plain}, &stdout, &stderr); code != 0 {
				t.Fatalf("spd3inst -o exit = %d\n%s", code, &stderr)
			}
			if strings.Contains(stderr.String(), "skip") {
				t.Fatalf("rewriter skipped a shared variable:\n%s", &stderr)
			}

			// The rewrite must actually instrument something — twins
			// passing because both sides ran uninstrumented would be
			// vacuous.
			before, err := os.ReadFile(filepath.Join(plain, "main.go"))
			if err != nil {
				t.Fatal(err)
			}
			after, err := os.ReadFile(filepath.Join(gen, "main.go"))
			if err != nil {
				t.Fatal(err)
			}
			if bytes.Equal(before, after) {
				t.Fatal("rewriter left the plain twin unchanged")
			}

			handOut := goRun(t, hand)
			genOut := goRun(t, gen)
			if handOut != genOut {
				t.Errorf("outputs differ\n--- hand ---\n%s--- rewritten ---\n%s", handOut, genOut)
			}
			m := racyLine.FindStringSubmatch(genOut)
			if m == nil {
				t.Fatalf("no racy verdict in output:\n%s", genOut)
			}
			if got := m[1] == "true"; got != tw.racy {
				t.Errorf("verdict = %v, want %v\n%s", got, tw.racy, genOut)
			}
			if !strings.Contains(genOut, "digest: ") {
				t.Errorf("no digest line in output:\n%s", genOut)
			}
		})
	}
}
