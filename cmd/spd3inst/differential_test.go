package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The twin benchmarks: each has a plain version (spd3 task structure,
// plain shared data) and a hand-instrumented version using the same
// container names. spd3inst rewrites the plain one twice — once with
// -no-elide and once with the default checkelim post-pass — and all
// three programs are run and must agree byte-for-byte: same computed
// values, same race verdict, same digest over the sorted race set.
// elided marks twins whose optimized variant must actually lose
// checks, so the three-way agreement is not vacuous.
var twins = []struct {
	name   string
	racy   bool
	elided bool
}{
	{"matmul", false, false},
	{"vecnorm", true, false},
	{"counter", true, false},
	{"wordcount", true, false},
	{"lockedmap", false, false},
	{"stencil", true, true},
}

var racyLine = regexp.MustCompile(`(?m)^racy: (true|false)$`)

// goRun builds and runs the main package in dir, returning its stdout.
func goRun(t *testing.T, dir string) string {
	t.Helper()
	cmd := exec.Command("go", "run", ".")
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("go run %s: %v\n%s", dir, err, &stderr)
	}
	return stdout.String()
}

func TestDifferentialTwins(t *testing.T) {
	for _, tw := range twins {
		t.Run(tw.name, func(t *testing.T) {
			plain := filepath.Join("testdata", "twins", tw.name, "plain")
			hand := filepath.Join("testdata", "twins", tw.name, "hand")

			// Generated packages must live inside the module so the
			// spd3 import resolves under go run; testdata keeps them
			// out of ./... builds.
			gen, err := os.MkdirTemp("testdata", "gen-"+tw.name+"-")
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { os.RemoveAll(gen) })
			genOpt, err := os.MkdirTemp("testdata", "genopt-"+tw.name+"-")
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { os.RemoveAll(genOpt) })

			var stdout, stderr bytes.Buffer
			if code := run([]string{"-no-elide", "-o", gen, plain}, &stdout, &stderr); code != 0 {
				t.Fatalf("spd3inst -no-elide -o exit = %d\n%s", code, &stderr)
			}
			if strings.Contains(stderr.String(), "skip") {
				t.Fatalf("rewriter skipped a shared variable:\n%s", &stderr)
			}
			var optErr bytes.Buffer
			if code := run([]string{"-o", genOpt, plain}, &stdout, &optErr); code != 0 {
				t.Fatalf("spd3inst -o exit = %d\n%s", code, &optErr)
			}
			if strings.Contains(optErr.String(), "skip") {
				t.Fatalf("rewriter skipped a shared variable:\n%s", &optErr)
			}

			// The rewrite must actually instrument something — twins
			// passing because both sides ran uninstrumented would be
			// vacuous.
			before, err := os.ReadFile(filepath.Join(plain, "main.go"))
			if err != nil {
				t.Fatal(err)
			}
			after, err := os.ReadFile(filepath.Join(gen, "main.go"))
			if err != nil {
				t.Fatal(err)
			}
			if bytes.Equal(before, after) {
				t.Fatal("rewriter left the plain twin unchanged")
			}

			// The elided twin pins the post-pass end to end: the
			// optimizer found something, marked it, and stamped the
			// count for the runtime counter.
			if tw.elided {
				if !strings.Contains(optErr.String(), "statically elided") {
					t.Errorf("post-pass elided nothing on an elision twin:\n%s", &optErr)
				}
				optMain, err := os.ReadFile(filepath.Join(genOpt, "main.go"))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Contains(optMain, []byte("//spd3opt:elided")) {
					t.Error("optimized twin carries no //spd3opt:elided marker")
				}
				stamp, err := os.ReadFile(filepath.Join(genOpt, "zz_spd3opt.go"))
				if err != nil {
					t.Fatalf("missing zz_spd3opt.go stamp: %v", err)
				}
				if !bytes.Contains(stamp, []byte("RegisterStaticElided")) {
					t.Errorf("stamp does not register the elided count:\n%s", stamp)
				}
			}

			handOut := goRun(t, hand)
			genOut := goRun(t, gen)
			genOptOut := goRun(t, genOpt)
			if handOut != genOut {
				t.Errorf("outputs differ\n--- hand ---\n%s--- rewritten ---\n%s", handOut, genOut)
			}
			if genOut != genOptOut {
				t.Errorf("elision changed behavior\n--- rewritten ---\n%s--- optimized ---\n%s", genOut, genOptOut)
			}
			m := racyLine.FindStringSubmatch(genOut)
			if m == nil {
				t.Fatalf("no racy verdict in output:\n%s", genOut)
			}
			if got := m[1] == "true"; got != tw.racy {
				t.Errorf("verdict = %v, want %v\n%s", got, tw.racy, genOut)
			}
			if !strings.Contains(genOut, "digest: ") {
				t.Errorf("no digest line in output:\n%s", genOut)
			}
		})
	}
}
