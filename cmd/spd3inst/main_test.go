package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const fixtures = "../../internal/analysis/rewrite/testdata"

// copyFixture clones one fixture package into a fresh directory so -w
// can modify it without touching the checked-in files.
func copyFixture(t *testing.T, name string) string {
	t.Helper()
	src := filepath.Join(fixtures, name)
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		content, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), content, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func TestReportMode(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{filepath.Join(fixtures, "array")}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (rewrites pending); stderr: %s", code, &stderr)
	}
	out := stdout.String()
	for _, want := range []string{
		`rewrite data -> spd3.Array "main.data"`,
		`rewrite sum -> spd3.Var "main.sum"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report output missing %q:\n%s", want, out)
		}
	}
}

func TestReportModeClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{filepath.Join(fixtures, "sequential")}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (nothing to rewrite); stderr: %s", code, &stderr)
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run produced output:\n%s", &stdout)
	}
}

func TestDiffMode(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-diff", filepath.Join(fixtures, "mapmutex")}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, &stderr)
	}
	out := stdout.String()
	for _, want := range []string{
		"--- ", "+++ ", "@@ ",
		"-\tcounts := make(map[string]int)",
		`+	counts := spd3.NewMap[string, int](eng, "main.counts")`,
		"-\t\t\tmu.Lock()",
		"+\t\t\tmu.Lock(c)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteMode(t *testing.T) {
	dir := copyFixture(t, "array")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-w", dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("-w exit = %d, want 0; stderr: %s", code, &stderr)
	}
	got, err := os.ReadFile(filepath.Join(dir, "main.go"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join(fixtures, "array", "main.go.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("-w output differs from golden:\n%s", got)
	}

	// Second run over its own output: fixed point, exit 0, no writes.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-w", dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("second -w exit = %d, want 0; stderr: %s", code, &stderr)
	}
	again, err := os.ReadFile(filepath.Join(dir, "main.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, want) {
		t.Error("-w is not idempotent")
	}
}

func TestOutputDirMode(t *testing.T) {
	out := filepath.Join(t.TempDir(), "twin")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-o", out, filepath.Join(fixtures, "matrix")}, &stdout, &stderr); code != 0 {
		t.Fatalf("-o exit = %d, want 0; stderr: %s", code, &stderr)
	}
	got, err := os.ReadFile(filepath.Join(out, "main.go"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join(fixtures, "matrix", "main.go.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("-o output differs from golden:\n%s", got)
	}
}

func TestJSONMode(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", filepath.Join(fixtures, "skips")}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, &stderr)
	}
	var env struct {
		Tool     string `json:"tool"`
		Version  string `json:"version"`
		Packages []struct {
			Package   string `json:"package"`
			Files     []string
			Rewritten []struct{ Var string }
			Skips     []struct{ Var, Reason string }
		} `json:"packages"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &env); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, &stdout)
	}
	if env.Tool != "spd3inst" || env.Version == "" {
		t.Errorf("envelope = %q/%q, want spd3inst with a version", env.Tool, env.Version)
	}
	if len(env.Packages) != 1 {
		t.Fatalf("packages = %d, want 1", len(env.Packages))
	}
	p := env.Packages[0]
	if len(p.Rewritten) != 0 || len(p.Skips) != 2 || len(p.Files) != 1 {
		t.Errorf("skips fixture: rewritten=%d skips=%d files=%d, want 0/2/1",
			len(p.Rewritten), len(p.Skips), len(p.Files))
	}
}

func TestModeConflict(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-w", "-diff", "."}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2 for -w -diff", code)
	}
	if !strings.Contains(stderr.String(), "mutually exclusive") {
		t.Errorf("stderr = %q, want mutual-exclusion message", &stderr)
	}
}
