package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"spd3/internal/analysis"
)

const fixtures = "../../internal/analysis/testdata"

func TestDriverExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		exit int
	}{
		{"known-bad fixture", []string{fixtures + "/unchecked/bad"}, 1},
		{"safe fixture", []string{fixtures + "/unchecked/safe"}, 0},
		{"unknown analyzer", []string{"-analyzers", "nope", "."}, 2},
		{"missing dir", []string{fixtures + "/does-not-exist"}, 2},
		{"list", []string{"-list"}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errOut strings.Builder
			if got := run(tc.args, &out, &errOut); got != tc.exit {
				t.Errorf("run(%v) = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					tc.args, got, tc.exit, out.String(), errOut.String())
			}
		})
	}
}

// TestDriverPositionAccurate pins the acceptance criterion: a known-bad
// fixture (an Unchecked slice captured by a spawned task) makes the
// driver exit non-zero with a file:line:col-accurate diagnostic.
func TestDriverPositionAccurate(t *testing.T) {
	var out, errOut strings.Builder
	if got := run([]string{"-analyzers", "unchecked", fixtures + "/unchecked/bad"}, &out, &errOut); got != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", got, errOut.String())
	}
	if !regexp.MustCompile(`bad\.go:15:4: uninstrumented data "raw"`).MatchString(out.String()) {
		t.Errorf("missing position-accurate diagnostic in:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "finding(s)") {
		t.Errorf("missing summary on stderr: %q", errOut.String())
	}
}

func TestDriverJSONEnvelope(t *testing.T) {
	var out, errOut strings.Builder
	if got := run([]string{"-json", fixtures + "/deprecated/bad"}, &out, &errOut); got != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", got, errOut.String())
	}
	var rep analysis.JSONReport
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if rep.Tool != "spd3vet" || rep.Version != analysis.Version || len(rep.Findings) != 3 {
		t.Errorf("envelope = %q/%q with %d findings, want spd3vet/%s with 3",
			rep.Tool, rep.Version, len(rep.Findings), analysis.Version)
	}

	// A clean target still emits the envelope, with an empty findings
	// array, and exits 0.
	out.Reset()
	if got := run([]string{"-json", fixtures + "/unchecked/safe"}, &out, &errOut); got != 0 {
		t.Fatalf("exit = %d on clean target, want 0", got)
	}
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil || rep.Findings == nil || len(rep.Findings) != 0 {
		t.Errorf("clean envelope = %s (err %v), want empty findings array", out.String(), err)
	}
}

func TestDriverFix(t *testing.T) {
	src, err := os.ReadFile(fixtures + "/deprecated/bad/bad.go")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), src, 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if got := run([]string{"-fix", dir}, &out, &errOut); got != 0 {
		t.Fatalf("exit = %d, want 0 (all findings fixable); stdout:\n%s\nstderr:\n%s",
			got, out.String(), errOut.String())
	}
	if !strings.Contains(errOut.String(), "applied 3 fix(es)") {
		t.Errorf("stderr = %q, want applied 3 fix(es)", errOut.String())
	}
	// Second run over the rewritten source is clean.
	if got := run([]string{dir}, &out, &errOut); got != 0 {
		t.Errorf("exit after fix = %d, want 0", got)
	}
}

// TestDriverDogfood runs the full suite over this repository, which
// must stay vet-clean: the CI gate runs exactly this.
func TestDriverDogfood(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	var out, errOut strings.Builder
	if got := run([]string{"../../..."}, &out, &errOut); got != 0 {
		t.Errorf("spd3vet is not clean on its own repo (exit %d):\n%s%s", got, out.String(), errOut.String())
	}
}
