// Command spd3vet statically checks programs written against the spd3
// API for uses that void the detector's soundness guarantee: escape-
// hatch data crossing spawn boundaries, task contexts escaping their
// task, raw Go concurrency inside task bodies, and retired API. It
// also carries the §5.5 checkelim optimizer as an analyzer: checks it
// proves redundant are reported as findings whose fixes (-fix) rewrite
// them to unchecked accesses under a //spd3opt:elided marker.
//
// Usage:
//
//	spd3vet ./...                      # analyze packages, exit 1 on findings
//	spd3vet -json ./...                # JSON envelope (tool, version, findings)
//	spd3vet -fix ./...                 # apply machine-applicable rewrites
//	spd3vet -analyzers unchecked,rawconc ./internal/bench
//	spd3vet -analyzers checkelim -fix ./pkg   # elide provably redundant checks
//
// A finding can be suppressed with a justified directive on (or one
// line above) the flagged line:
//
//	//spd3vet:ignore <reason>
//
// Directives without a reason are themselves findings. Exit status: 0
// when clean, 1 on findings, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"spd3/internal/analysis"
	_ "spd3/internal/analysis/checkelim" // register the checkelim analyzer
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("spd3vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut   = fs.Bool("json", false, "emit findings as a JSON envelope (tool, version, findings)")
		fix       = fs.Bool("fix", false, "apply machine-applicable rewrites, then report what remains")
		analyzers = fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		list      = fs.Bool("list", false, "list the analyzers and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	suite := analysis.All()
	if *list {
		for _, a := range analysis.Registered() {
			tag := ""
			if a.OptIn {
				tag = " (opt-in: run with -analyzers)"
			}
			fmt.Fprintf(stdout, "%-12s %s%s\n", a.Name, a.Doc, tag)
		}
		return 0
	}
	if *analyzers != "" {
		var err error
		suite, err = analysis.ByName(strings.Split(*analyzers, ","))
		if err != nil {
			fmt.Fprintln(stderr, "spd3vet:", err)
			return 2
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(stderr, "spd3vet:", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "spd3vet:", err)
		return 2
	}

	var all []analysis.Diagnostic
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, suite)
		if err != nil {
			fmt.Fprintln(stderr, "spd3vet:", err)
			return 2
		}
		diags, _ = analysis.Suppress(pkg, diags)
		all = append(all, diags...)
	}
	analysis.SortDiagnostics(loader.Fset, all)

	if *fix {
		remaining, applied, err := analysis.ApplyFixes(loader.Fset, all)
		if err != nil {
			fmt.Fprintln(stderr, "spd3vet:", err)
			return 2
		}
		if applied > 0 {
			fmt.Fprintf(stderr, "spd3vet: applied %d fix(es)\n", applied)
		}
		all = remaining
	}

	if *jsonOut {
		if err := analysis.WriteJSON(stdout, loader.Fset, all); err != nil {
			fmt.Fprintln(stderr, "spd3vet:", err)
			return 2
		}
	} else if err := analysis.WriteText(stdout, loader.Fset, all); err != nil {
		fmt.Fprintln(stderr, "spd3vet:", err)
		return 2
	}
	if len(all) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "spd3vet: %d finding(s)\n", len(all))
		}
		return 1
	}
	return 0
}
