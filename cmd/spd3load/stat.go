package main

import (
	"sort"
	"time"
)

// percentile returns the q-quantile (0 <= q <= 1) of the observed
// latencies by nearest-rank on the sorted sample; q=1 is the maximum.
// It sorts its argument in place. An empty sample yields 0.
func percentile(ls []time.Duration, q float64) time.Duration {
	if len(ls) == 0 {
		return 0
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	i := int(q*float64(len(ls)-1) + 0.5)
	if i < 0 {
		i = 0
	}
	if i >= len(ls) {
		i = len(ls) - 1
	}
	return ls[i]
}
