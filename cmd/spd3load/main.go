// Command spd3load measures the service-level performance of a running
// spd3d daemon: it records one benchmark trace in-process (record once —
// SPD3's Theorem 1 makes that single trace certify all schedules of the
// input), then hammers the daemon's analyze endpoint with N concurrent
// connections and prints throughput and latency percentiles.
//
// Usage:
//
//	spd3d -addr :7331 &
//	spd3load -addr http://127.0.0.1:7331 -bench SOR -scale 0.2 -c 8 -n 200
//	spd3load -addr http://127.0.0.1:7331 -racy RacyMonteCarlo -detector all -d 10s
//
// Rejections from the daemon's admission control (429 saturated / 503
// draining) are counted separately from hard failures: saturating the
// server is an expected outcome of a load test, not an error.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"spd3/internal/bench"
	_ "spd3/internal/detectors" // populate the detector registry (recording needs none, listing does)
	"spd3/internal/server"
	"spd3/internal/task"
	"spd3/internal/trace"
)

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:7331", "spd3d base URL")
		name     = flag.String("bench", "SOR", "benchmark to record (see spd3 -list)")
		racy     = flag.String("racy", "", "record a deliberately racy variant instead of -bench")
		detector = flag.String("detector", "spd3", "detector the daemon should run (or \"all\")")
		scale    = flag.Float64("scale", 0.2, "problem-size multiplier for the recorded run")
		chunked  = flag.Bool("chunked", false, "coarse one-chunk-per-worker loops")
		seq      = flag.Bool("seq", false, "record depth-first (required for sequential-only detectors)")
		workers  = flag.Int("workers", 4, "worker count for the recorded run")
		conc     = flag.Int("c", 8, "concurrent connections")
		total    = flag.Int("n", 100, "total requests (ignored when -d is set)")
		duration = flag.Duration("d", 0, "run for this long instead of a fixed request count")
	)
	flag.Parse()

	data, err := recordTrace(*name, *racy, *scale, *chunked, *seq, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spd3load:", err)
		os.Exit(1)
	}
	label := *name
	if *racy != "" {
		label = *racy
	}
	fmt.Printf("trace     : %s (%d bytes, sequential=%v)\n", label, len(data), *seq)

	client := server.NewClient(*addr)
	ctx := context.Background()
	if err := client.Health(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "spd3load: daemon at %s not healthy: %v\n", *addr, err)
		os.Exit(1)
	}

	res := run(ctx, client, *detector, data, *conc, *total, *duration)
	fmt.Print(res.summary(*detector, len(data)))
	if res.failed > 0 {
		os.Exit(1)
	}
}

// recordTrace runs the selected benchmark once under the trace recorder
// and returns the trace bytes.
func recordTrace(name, racy string, scale float64, chunked, seq bool, workers int) ([]byte, error) {
	var buf bytes.Buffer
	rec := trace.NewRecorder(&buf, seq)
	exec := task.Pool
	if seq {
		exec, workers = task.Sequential, 1
	}
	rt, err := task.New(task.Config{Executor: exec, Workers: workers, Detector: rec})
	if err != nil {
		return nil, err
	}
	in := bench.Input{Scale: scale, Chunked: chunked}
	if racy != "" {
		for _, rb := range bench.Racy() {
			if rb.Name == racy {
				if rb.NeedsParallel && seq {
					return nil, fmt.Errorf("racy variant %q needs the parallel executor; drop -seq", racy)
				}
				if _, err := rb.Run(rt, in); err != nil {
					return nil, err
				}
				if err := rec.Close(); err != nil {
					return nil, err
				}
				return buf.Bytes(), nil
			}
		}
		return nil, fmt.Errorf("unknown racy variant %q", racy)
	}
	b, err := bench.ByName(name)
	if err != nil {
		return nil, err
	}
	if _, err := b.Run(rt, in); err != nil {
		return nil, err
	}
	if err := rec.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// result aggregates one load run.
type result struct {
	ok, rejected, failed int
	racy                 bool
	latencies            []time.Duration // successful requests only
	elapsed              time.Duration
	firstErr             error
}

// run hammers the daemon with conc connections until total requests have
// been issued (or d has elapsed, when d > 0).
func run(ctx context.Context, client *server.Client, detector string, data []byte, conc, total int, d time.Duration) *result {
	var (
		issued   atomic.Int64
		deadline time.Time
	)
	if d > 0 {
		deadline = time.Now().Add(d)
		total = 1 << 62 // bounded by the deadline instead
	}
	more := func() bool {
		if !deadline.IsZero() && time.Now().After(deadline) {
			return false
		}
		return issued.Add(1) <= int64(total)
	}

	results := make([]result, conc)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := &results[w]
			for more() {
				t0 := time.Now()
				rep, err := client.Analyze(ctx, detector, bytes.NewReader(data))
				lat := time.Since(t0)
				switch {
				case err == nil:
					r.ok++
					r.latencies = append(r.latencies, lat)
					if len(rep.Verdicts) > 0 {
						r.racy = r.racy || rep.Verdicts[0].Racy
					}
				default:
					var apiErr *server.APIError
					if errors.As(err, &apiErr) && apiErr.Saturated() {
						r.rejected++
					} else {
						r.failed++
						if r.firstErr == nil {
							r.firstErr = err
						}
					}
				}
			}
		}()
	}
	wg.Wait()

	out := &result{elapsed: time.Since(start)}
	for i := range results {
		r := &results[i]
		out.ok += r.ok
		out.rejected += r.rejected
		out.failed += r.failed
		out.racy = out.racy || r.racy
		out.latencies = append(out.latencies, r.latencies...)
		if out.firstErr == nil {
			out.firstErr = r.firstErr
		}
	}
	return out
}

func (r *result) summary(detector string, traceBytes int) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "detector  : %s\n", detector)
	fmt.Fprintf(&b, "requests  : %d ok, %d rejected (saturated), %d failed in %v\n",
		r.ok, r.rejected, r.failed, r.elapsed.Round(time.Millisecond))
	if r.firstErr != nil {
		fmt.Fprintf(&b, "first err : %v\n", r.firstErr)
	}
	if r.ok > 0 {
		secs := r.elapsed.Seconds()
		fmt.Fprintf(&b, "throughput: %.1f analyses/s, %.2f MB/s of trace\n",
			float64(r.ok)/secs, float64(r.ok)*float64(traceBytes)/(1<<20)/secs)
		fmt.Fprintf(&b, "latency   : p50 %v  p90 %v  p99 %v  max %v\n",
			percentile(r.latencies, 0.50).Round(time.Microsecond),
			percentile(r.latencies, 0.90).Round(time.Microsecond),
			percentile(r.latencies, 0.99).Round(time.Microsecond),
			percentile(r.latencies, 1.0).Round(time.Microsecond))
		fmt.Fprintf(&b, "verdict   : racy=%v\n", r.racy)
	}
	return b.String()
}
