// Command spd3load measures the service-level performance of a running
// spd3d daemon: it records one benchmark trace in-process (record once —
// SPD3's Theorem 1 makes that single trace certify all schedules of the
// input), then hammers the daemon's analyze endpoint with N concurrent
// connections and prints throughput and latency percentiles.
//
// Usage:
//
//	spd3d -addr :7331 &
//	spd3load -addr http://127.0.0.1:7331 -bench SOR -size 0.2 -c 8 -n 200
//	spd3load -addr http://127.0.0.1:7331 -racy RacyMonteCarlo -detector all -d 10s
//	spd3load -addr http://127.0.0.1:7331 -racy RacyMonteCarlo -scale 64 -c 2 -n 8
//	spd3load -addr http://127.0.0.1:7331 -racy RacyMonteCarlo -async -tenant ci -digest
//
// -scale N streams an N×-amplified trace per request without ever
// materializing it client-side (trace.Amplifier synthesizes the bytes on
// the fly), which is how the daemon's flat-memory claim is exercised:
// after the run spd3load reads /statsz and reports the daemon's peak
// heap, peak RSS, and how many bytes and finish-scope segments it
// streamed through the sharded analyze path.
//
// -async drives the /v2 job API instead of the synchronous /v1 endpoint:
// each request submits a job, polls it to a terminal state, and fetches
// the result envelope, so the measured latency covers the full
// submit→done lifecycle. -tenant scopes the jobs (and the daemon's
// quotas) to a named tenant. -digest prints a stable SHA-256 over the
// run's deduplicated race set, which is how CI compares the v1 and v2
// paths on the same trace: same digest, same races.
//
// Rejections from the daemon's admission control (429 saturated / 503
// draining) are counted separately from hard failures: saturating the
// server is an expected outcome of a load test, not an error.
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"spd3/client"
	"spd3/internal/bench"
	_ "spd3/internal/detectors" // populate the detector registry (recording needs none, listing does)
	"spd3/internal/task"
	"spd3/internal/trace"
)

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:7331", "spd3d base URL")
		name     = flag.String("bench", "SOR", "benchmark to record (see spd3 -list)")
		racy     = flag.String("racy", "", "record a deliberately racy variant instead of -bench")
		detector = flag.String("detector", "spd3", "detector the daemon should run (or \"all\")")
		size     = flag.Float64("size", 0.2, "problem-size multiplier for the recorded run")
		scale    = flag.Int("scale", 1, "stream an N×-amplified trace per request (synthesized on the fly, never materialized client-side)")
		chunked  = flag.Bool("chunked", false, "coarse one-chunk-per-worker loops")
		seq      = flag.Bool("seq", false, "record depth-first (required for sequential-only detectors)")
		workers  = flag.Int("workers", 4, "worker count for the recorded run")
		conc     = flag.Int("c", 8, "concurrent connections")
		total    = flag.Int("n", 100, "total requests (ignored when -d is set)")
		duration = flag.Duration("d", 0, "run for this long instead of a fixed request count")
		async    = flag.Bool("async", false, "drive the /v2 job API (submit, poll to done, fetch result) instead of /v1/analyze")
		tenant   = flag.String("tenant", "", "X-SPD3-Tenant header: scope jobs and quotas to this tenant")
		digest   = flag.Bool("digest", false, "print a SHA-256 over the run's deduplicated race set (CI differential oracle)")
		sampleSp = flag.String("sample", "", "per-request sampling spec override sent as sample= (e.g. bernoulli:0.01, burst:0.02, off)")
	)
	flag.Parse()

	data, err := recordTrace(*name, *racy, *size, *chunked, *seq, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spd3load:", err)
		os.Exit(1)
	}
	label := *name
	if *racy != "" {
		label = *racy
	}
	wireBytes := int64(len(data))
	if *scale > 1 {
		amp, err := trace.NewAmplifier(data, *scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spd3load:", err)
			os.Exit(1)
		}
		wireBytes = amp.SizeHint()
		fmt.Printf("trace     : %s ×%d (%d bytes recorded, ~%d bytes streamed per request, sequential=%v)\n",
			label, *scale, len(data), wireBytes, *seq)
	} else {
		fmt.Printf("trace     : %s (%d bytes, sequential=%v)\n", label, len(data), *seq)
	}

	cl := client.New(*addr)
	cl.Tenant = *tenant
	cl.Sample = *sampleSp
	ctx := context.Background()
	if err := cl.Health(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "spd3load: daemon at %s not healthy: %v\n", *addr, err)
		os.Exit(1)
	}
	before, err := cl.Stats(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spd3load: reading /statsz: %v\n", err)
		os.Exit(1)
	}

	res := run(ctx, cl, *detector, data, *scale, *conc, *total, *duration, *async)
	fmt.Print(res.summary(*detector, wireBytes))
	if *digest {
		fmt.Printf("digest    : %s\n", res.raceDigest())
	}
	// The daemon's peak gauges are monotonic, so one post-run read sees
	// the run's high-water mark; the counter deltas isolate this run
	// from whatever the daemon served before.
	if after, err := cl.Stats(ctx); err == nil {
		fmt.Print(daemonSummary(before, after, len(res.races)))
	} else {
		fmt.Fprintf(os.Stderr, "spd3load: reading /statsz after run: %v\n", err)
	}
	if res.failed > 0 {
		os.Exit(1)
	}
}

// daemonSummary renders the server-side view of the run: bytes streamed
// through the analyze path, finish-scope segments sharded, the
// detector-side sampling deltas (with the effective rate and a
// missed-race estimate when checks were elided), and the daemon's
// memory high-water marks — the numbers that substantiate the
// flat-ceiling claim when -scale pushes traces far past daemon RAM.
// found is the run's deduplicated distinct-race count, the basis of the
// missed-race estimate.
func daemonSummary(before, after *client.Statsz, found int) string {
	var b bytes.Buffer
	streamed := after.Stats.Get("srv.streamed_bytes") - before.Stats.Get("srv.streamed_bytes")
	segments := after.Stats.Get("trace.segments") - before.Stats.Get("trace.segments")
	unsplit := after.Stats.Get("srv.unsplit") - before.Stats.Get("srv.unsplit")
	fmt.Fprintf(&b, "daemon    : %.2f MB streamed, %d segments", float64(streamed)/(1<<20), segments)
	if unsplit > 0 {
		fmt.Fprintf(&b, " (%d unsplit fallbacks)", unsplit)
	}
	fmt.Fprintf(&b, ", %d shard workers\n", after.ShardWorkers)
	if stored := after.Stats.Get("store.put_bytes") - before.Stats.Get("store.put_bytes"); stored > 0 {
		dedup := after.Stats.Get("store.dedup_hits") - before.Stats.Get("store.dedup_hits")
		fmt.Fprintf(&b, "store     : %.2f MB written, %d dedup hits, %d blobs / %.2f MB resident\n",
			float64(stored)/(1<<20), dedup, after.StoreBlobs, float64(after.StoreBytes)/(1<<20))
	}
	checked := after.Stats.Get("sample.checked") - before.Stats.Get("sample.checked")
	skipped := after.Stats.Get("sample.skipped") - before.Stats.Get("sample.skipped")
	if checked > 0 || skipped > 0 {
		rate := float64(checked) / float64(checked+skipped)
		fmt.Fprintf(&b, "sampling  : %d checked, %d skipped (effective rate %.4f)",
			checked, skipped, rate)
		// Per-location coins give both racing accesses the same decision,
		// so a race at a skipped location is missed with probability
		// (1-r): found races undercount by roughly found×(1-r)/r.
		if rate > 0 && rate < 1 && found > 0 {
			fmt.Fprintf(&b, ", ~%.0f races likely missed", float64(found)*(1-rate)/rate)
		}
		fmt.Fprintln(&b)
		for _, ts := range after.Sampling {
			fmt.Fprintf(&b, "governor  : tenant=%s mode=%s rate=%.4f\n", ts.Tenant, ts.Mode, ts.Rate)
		}
	}
	fmt.Fprintf(&b, "daemon mem: peak heap %.1f MiB", float64(after.PeakHeapBytes)/(1<<20))
	if after.PeakRSSBytes > 0 {
		fmt.Fprintf(&b, ", peak RSS %.1f MiB", float64(after.PeakRSSBytes)/(1<<20))
	}
	fmt.Fprintf(&b, ", sys %.1f MiB\n", float64(after.SysBytes)/(1<<20))
	return b.String()
}

// recordTrace runs the selected benchmark once under the trace recorder
// and returns the trace bytes.
func recordTrace(name, racy string, scale float64, chunked, seq bool, workers int) ([]byte, error) {
	var buf bytes.Buffer
	rec := trace.NewRecorder(&buf, seq)
	exec := task.Pool
	if seq {
		exec, workers = task.Sequential, 1
	}
	rt, err := task.New(task.Config{Executor: exec, Workers: workers, Detector: rec})
	if err != nil {
		return nil, err
	}
	in := bench.Input{Scale: scale, Chunked: chunked}
	if racy != "" {
		for _, rb := range bench.Racy() {
			if rb.Name == racy {
				if rb.NeedsParallel && seq {
					return nil, fmt.Errorf("racy variant %q needs the parallel executor; drop -seq", racy)
				}
				if _, err := rb.Run(rt, in); err != nil {
					return nil, err
				}
				if err := rec.Close(); err != nil {
					return nil, err
				}
				return buf.Bytes(), nil
			}
		}
		return nil, fmt.Errorf("unknown racy variant %q", racy)
	}
	b, err := bench.ByName(name)
	if err != nil {
		return nil, err
	}
	if _, err := b.Run(rt, in); err != nil {
		return nil, err
	}
	if err := rec.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// result aggregates one load run.
type result struct {
	ok, rejected, failed int
	racy                 bool
	races                map[string]struct{} // deduplicated across every successful report
	latencies            []time.Duration     // successful requests only
	elapsed              time.Duration
	firstErr             error
}

// recordReport folds one successful report into the run's aggregates.
func (r *result) recordReport(rep *client.Report) {
	for _, v := range rep.Verdicts {
		r.racy = r.racy || v.Racy
		for _, rc := range v.Races {
			if r.races == nil {
				r.races = make(map[string]struct{})
			}
			r.races[fmt.Sprintf("%s/%s/%s/%d", v.Detector, rc.Kind, rc.Region, rc.Index)] = struct{}{}
		}
	}
}

// raceDigest returns a SHA-256 over the sorted, deduplicated race set —
// stable across request ordering and across the v1/v2 paths, so CI can
// diff the two APIs on the same trace by comparing digests.
func (r *result) raceDigest() string {
	keys := make([]string, 0, len(r.races))
	for k := range r.races {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		fmt.Fprintln(h, k)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// analyzeOnce issues one request through the selected API generation and
// returns the report. The async path is submit → poll → result, so its
// latency covers the whole job lifecycle.
func analyzeOnce(ctx context.Context, cl *client.Client, detector string, body io.Reader, async bool) (*client.Report, error) {
	if !async {
		return cl.Analyze(ctx, detector, body)
	}
	st, err := cl.SubmitJob(ctx, detector, body)
	if err != nil {
		return nil, err
	}
	fin, err := cl.WaitJob(ctx, st.ID)
	if err != nil {
		return nil, err
	}
	if fin.State != client.StateDone {
		return nil, fmt.Errorf("job %s ended %s: %s", fin.ID, fin.State, fin.Error)
	}
	rep, err := cl.Result(ctx, st.ID)
	if err != nil {
		return nil, err
	}
	// Finished jobs are kept for polling until TTL; a load run has no
	// further use for them, so free the tenant's quota eagerly.
	cl.DeleteJob(ctx, st.ID) //nolint:errcheck // best-effort cleanup
	return rep, nil
}

// run hammers the daemon with conc connections until total requests have
// been issued (or d has elapsed, when d > 0). When scale > 1 each
// request streams a fresh scale×-amplified trace straight onto the wire.
func run(ctx context.Context, cl *client.Client, detector string, data []byte, scale, conc, total int, d time.Duration, async bool) *result {
	var (
		issued   atomic.Int64
		deadline time.Time
	)
	if d > 0 {
		deadline = time.Now().Add(d)
		total = 1 << 62 // bounded by the deadline instead
	}
	more := func() bool {
		if !deadline.IsZero() && time.Now().After(deadline) {
			return false
		}
		return issued.Add(1) <= int64(total)
	}

	results := make([]result, conc)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := &results[w]
			for more() {
				var body io.Reader = bytes.NewReader(data)
				if scale > 1 {
					// Amplifiers are single-use streams, so each request
					// builds its own; the base scan is cheap next to the
					// replay it feeds.
					amp, err := trace.NewAmplifier(data, scale)
					if err != nil {
						r.failed++
						if r.firstErr == nil {
							r.firstErr = err
						}
						return
					}
					body = amp
				}
				t0 := time.Now()
				rep, err := analyzeOnce(ctx, cl, detector, body, async)
				lat := time.Since(t0)
				switch {
				case err == nil:
					r.ok++
					r.latencies = append(r.latencies, lat)
					r.recordReport(rep)
				default:
					var apiErr *client.APIError
					if errors.As(err, &apiErr) && apiErr.Saturated() {
						r.rejected++
					} else {
						r.failed++
						if r.firstErr == nil {
							r.firstErr = err
						}
					}
				}
			}
		}()
	}
	wg.Wait()

	out := &result{elapsed: time.Since(start)}
	for i := range results {
		r := &results[i]
		out.ok += r.ok
		out.rejected += r.rejected
		out.failed += r.failed
		out.racy = out.racy || r.racy
		out.latencies = append(out.latencies, r.latencies...)
		for k := range r.races {
			if out.races == nil {
				out.races = make(map[string]struct{})
			}
			out.races[k] = struct{}{}
		}
		if out.firstErr == nil {
			out.firstErr = r.firstErr
		}
	}
	return out
}

func (r *result) summary(detector string, traceBytes int64) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "detector  : %s\n", detector)
	fmt.Fprintf(&b, "requests  : %d ok, %d rejected (saturated), %d failed in %v\n",
		r.ok, r.rejected, r.failed, r.elapsed.Round(time.Millisecond))
	if r.firstErr != nil {
		fmt.Fprintf(&b, "first err : %v\n", r.firstErr)
	}
	if r.ok > 0 {
		secs := r.elapsed.Seconds()
		fmt.Fprintf(&b, "throughput: %.1f analyses/s, %.2f MB/s of trace\n",
			float64(r.ok)/secs, float64(r.ok)*float64(traceBytes)/(1<<20)/secs)
		fmt.Fprintf(&b, "latency   : p50 %v  p90 %v  p99 %v  max %v\n",
			percentile(r.latencies, 0.50).Round(time.Microsecond),
			percentile(r.latencies, 0.90).Round(time.Microsecond),
			percentile(r.latencies, 0.99).Round(time.Microsecond),
			percentile(r.latencies, 1.0).Round(time.Microsecond))
		fmt.Fprintf(&b, "verdict   : racy=%v\n", r.racy)
	}
	return b.String()
}
