package main

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"spd3/client"
	_ "spd3/internal/detectors"
	"spd3/internal/server"
)

func TestPercentile(t *testing.T) {
	if got := percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty percentile = %v, want 0", got)
	}
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	ls := []time.Duration{ms(9), ms(1), ms(5), ms(3), ms(7)}
	if got := percentile(ls, 0); got != ms(1) {
		t.Errorf("p0 = %v, want 1ms", got)
	}
	if got := percentile(ls, 0.5); got != ms(5) {
		t.Errorf("p50 = %v, want 5ms", got)
	}
	if got := percentile(ls, 1); got != ms(9) {
		t.Errorf("p100 = %v, want 9ms", got)
	}
}

// TestLoadAgainstDaemon drives the real load loop against an in-process
// daemon: record once, analyze n times, verdicts and counts must add up.
func TestLoadAgainstDaemon(t *testing.T) {
	data, err := recordTrace("", "RacyMonteCarlo", 0.2, false, false, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(server.Config{MaxInFlight: 64})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cl := client.New(ts.URL)
	res := run(context.Background(), cl, "spd3", data, 1, 4, 20, 0, false)
	if res.ok != 20 || res.rejected != 0 || res.failed != 0 {
		t.Fatalf("ok/rejected/failed = %d/%d/%d (first err %v), want 20/0/0",
			res.ok, res.rejected, res.failed, res.firstErr)
	}
	if !res.racy {
		t.Fatal("RacyMonteCarlo analyzed race-free")
	}
	if len(res.latencies) != 20 || percentile(res.latencies, 1) <= 0 {
		t.Fatalf("latencies = %d samples, max %v", len(res.latencies), percentile(res.latencies, 1))
	}

	// -scale streams an amplified trace per request; the verdict must
	// survive amplification and the daemon must report the larger body.
	res = run(context.Background(), cl, "spd3", data, 4, 2, 4, 0, false)
	if res.ok != 4 || res.failed != 0 {
		t.Fatalf("scaled ok/failed = %d/%d (first err %v), want 4/0", res.ok, res.failed, res.firstErr)
	}
	if !res.racy {
		t.Fatal("amplified RacyMonteCarlo analyzed race-free")
	}
	st, err := cl.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if streamed := st.Stats.Get("srv.streamed_bytes"); streamed < int64(len(data))*4*4 {
		t.Fatalf("srv.streamed_bytes = %d, want at least %d (4 requests × 4 copies)", streamed, len(data)*16)
	}
}

// TestLoadAsyncDifferential runs the same trace through /v1 and the
// async /v2 path and pins the digest oracle CI relies on: identical
// race sets, identical digests, racy verdict on both.
func TestLoadAsyncDifferential(t *testing.T) {
	data, err := recordTrace("", "RacyMonteCarlo", 0.2, false, false, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(server.Config{MaxInFlight: 64})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cl := client.New(ts.URL)
	cl.Tenant = "loadtest"
	ctx := context.Background()

	v1 := run(ctx, cl, "spd3", data, 1, 2, 4, 0, false)
	if v1.ok != 4 || v1.failed != 0 {
		t.Fatalf("v1 ok/failed = %d/%d (first err %v), want 4/0", v1.ok, v1.failed, v1.firstErr)
	}
	v2 := run(ctx, cl, "spd3", data, 1, 2, 4, 0, true)
	if v2.ok != 4 || v2.failed != 0 {
		t.Fatalf("v2 ok/failed = %d/%d (first err %v), want 4/0", v2.ok, v2.failed, v2.firstErr)
	}
	if !v1.racy || !v2.racy {
		t.Fatalf("racy: v1=%v v2=%v, want both true", v1.racy, v2.racy)
	}
	if len(v1.races) == 0 || v1.raceDigest() != v2.raceDigest() {
		t.Fatalf("race digests differ: v1 %s (%d races) vs v2 %s (%d races)",
			v1.raceDigest(), len(v1.races), v2.raceDigest(), len(v2.races))
	}

	// The async runs deleted their jobs; the daemon should report none
	// left over for this run (finished v1 shim jobs are ephemeral too).
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.JobsQueued != 0 || st.JobsRunning != 0 {
		t.Fatalf("leftover jobs: queued %d running %d", st.JobsQueued, st.JobsRunning)
	}
}
