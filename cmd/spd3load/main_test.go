package main

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	_ "spd3/internal/detectors"
	"spd3/internal/server"
	"spd3/internal/stats"
)

func TestPercentile(t *testing.T) {
	if got := percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty percentile = %v, want 0", got)
	}
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	ls := []time.Duration{ms(9), ms(1), ms(5), ms(3), ms(7)}
	if got := percentile(ls, 0); got != ms(1) {
		t.Errorf("p0 = %v, want 1ms", got)
	}
	if got := percentile(ls, 0.5); got != ms(5) {
		t.Errorf("p50 = %v, want 5ms", got)
	}
	if got := percentile(ls, 1); got != ms(9) {
		t.Errorf("p100 = %v, want 9ms", got)
	}
}

// TestLoadAgainstDaemon drives the real load loop against an in-process
// daemon: record once, analyze n times, verdicts and counts must add up.
func TestLoadAgainstDaemon(t *testing.T) {
	data, err := recordTrace("", "RacyMonteCarlo", 0.2, false, false, 4)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(server.Config{MaxInFlight: 64}).Handler())
	defer ts.Close()

	client := server.NewClient(ts.URL)
	res := run(context.Background(), client, "spd3", data, 1, 4, 20, 0)
	if res.ok != 20 || res.rejected != 0 || res.failed != 0 {
		t.Fatalf("ok/rejected/failed = %d/%d/%d (first err %v), want 20/0/0",
			res.ok, res.rejected, res.failed, res.firstErr)
	}
	if !res.racy {
		t.Fatal("RacyMonteCarlo analyzed race-free")
	}
	if len(res.latencies) != 20 || percentile(res.latencies, 1) <= 0 {
		t.Fatalf("latencies = %d samples, max %v", len(res.latencies), percentile(res.latencies, 1))
	}

	// -scale streams an amplified trace per request; the verdict must
	// survive amplification and the daemon must report the larger body.
	res = run(context.Background(), client, "spd3", data, 4, 2, 4, 0)
	if res.ok != 4 || res.failed != 0 {
		t.Fatalf("scaled ok/failed = %d/%d (first err %v), want 4/0", res.ok, res.failed, res.firstErr)
	}
	if !res.racy {
		t.Fatal("amplified RacyMonteCarlo analyzed race-free")
	}
	st, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if streamed := st.Stats.Get(stats.SrvStreamedBytes); streamed < int64(len(data))*4*4 {
		t.Fatalf("srv.streamed_bytes = %d, want at least %d (4 requests × 4 copies)", streamed, len(data)*16)
	}
}
