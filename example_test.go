package spd3_test

import (
	"fmt"

	"spd3"
)

// Example demonstrates the core workflow: run an async/finish program
// under SPD3 and inspect the report. The racy program writes one cell
// from two parallel tasks.
func Example() {
	eng, err := spd3.New(spd3.Options{Executor: spd3.Sequential, Detector: spd3.SPD3})
	if err != nil {
		panic(err)
	}
	cell := spd3.NewArray[int](eng, "cell", 1)
	report, err := eng.Run(func(c *spd3.Ctx) {
		c.Finish(func(c *spd3.Ctx) {
			c.Async(func(c *spd3.Ctx) { cell.Set(c, 0, 1) })
			c.Async(func(c *spd3.Ctx) { cell.Set(c, 0, 2) })
		})
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("race-free:", report.RaceFree())
	fmt.Println(report.Races[0])
	// Output:
	// race-free: false
	// write-write race on cell[0] between step#6 and step#9
}

// ExampleEngine_Run shows the certification property: a quiet run under
// SPD3 certifies every schedule of the input, not just the observed one.
func ExampleEngine_Run() {
	eng, err := spd3.New(spd3.Options{Workers: 4})
	if err != nil {
		panic(err)
	}
	parts := spd3.NewArray[int](eng, "parts", 8)
	sum := 0
	report, err := eng.Run(func(c *spd3.Ctx) {
		c.FinishAsync(8, func(c *spd3.Ctx, i int) {
			parts.Set(c, i, i*i) // disjoint writes
		})
		for i := 0; i < 8; i++ {
			sum += parts.Get(c, i) // ordered after the finish
		}
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(sum, report.RaceFree())
	// Output: 140 true
}

// ExampleNewAccumulator shows the race-free reduction construct: the
// idiomatic fix for the read-modify-write races SPD3 reports.
func ExampleNewAccumulator() {
	eng, err := spd3.New(spd3.Options{Workers: 4})
	if err != nil {
		panic(err)
	}
	sum := spd3.NewAccumulator(eng, func(a, b int) int { return a + b })
	report, err := eng.Run(func(c *spd3.Ctx) {
		c.FinishAsync(100, func(c *spd3.Ctx, i int) {
			sum.Put(c, i)
		})
	})
	if err != nil {
		panic(err)
	}
	total, _ := sum.Value()
	fmt.Println(total, report.RaceFree())
	// Output: 4950 true
}

// ExampleRunCilk runs a spawn/sync (Cilk-style) procedure under
// detection: async/finish generalizes spawn/sync (§2), so no detector
// changes are needed.
func ExampleRunCilk() {
	eng, err := spd3.New(spd3.Options{Workers: 2})
	if err != nil {
		panic(err)
	}
	out := spd3.NewArray[int](eng, "out", 2)
	report, err := eng.Run(func(c *spd3.Ctx) {
		spd3.RunCilk(c, func(k *spd3.Cilk) {
			k.Spawn(func(k *spd3.Cilk) { out.Set(k.Ctx(), 0, 21) })
			out.Set(k.Ctx(), 1, 21)
			k.Sync() // join the spawned half
			out.Set(k.Ctx(), 0, out.Get(k.Ctx(), 0)+out.Get(k.Ctx(), 1))
		})
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(out.Unchecked()[0], report.RaceFree())
	// Output: 42 true
}

// ExampleCtx_ParallelFor contrasts the paper's two loop decompositions:
// grain 1 is the fine-grained one-async-per-iteration form; a grain of
// n/workers gives the coarse chunked form used to compare against
// thread-based detectors.
func ExampleCtx_ParallelFor() {
	eng, err := spd3.New(spd3.Options{Workers: 2})
	if err != nil {
		panic(err)
	}
	squares := spd3.NewArray[int](eng, "squares", 6)
	_, err = eng.Run(func(c *spd3.Ctx) {
		c.ParallelFor(0, 6, 1, func(c *spd3.Ctx, i int) {
			squares.Set(c, i, i*i)
		})
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(squares.Unchecked())
	// Output: [0 1 4 9 16 25]
}
