// Package spd3 is a dynamic data-race detection library for structured
// (async/finish) parallel programs, reproducing "Scalable and Precise
// Dynamic Datarace Detection for Structured Parallelism" (Raman, Zhao,
// Sarkar, Vechev, Yahav — PLDI 2012).
//
// The package bundles a structured task runtime (work-stealing pool,
// goroutine-per-task, or sequential depth-first execution), instrumented
// shared-memory containers, and four interchangeable detectors:
//
//   - SPD3 (the paper's contribution): runs in parallel, O(1) space per
//     monitored location, sound and precise for a given input.
//   - ESP-bags: O(1) space but requires sequential depth-first execution.
//   - FastTrack: handles arbitrary fork-join and locks, but pays O(n)
//     space and time in the number of tasks.
//   - Eraser: the lockset heuristic; fast but imprecise.
//
// # Quick start
//
//	eng, err := spd3.New(spd3.Options{Workers: 4, Detector: spd3.SPD3})
//	if err != nil { ... }
//	acc := spd3.NewArray[int](eng, "acc", 1)
//	report, err := eng.Run(func(c *spd3.Ctx) {
//		c.FinishAsync(8, func(c *spd3.Ctx, i int) {
//			acc.Set(c, 0, i) // every task writes acc[0]: a data race
//		})
//	})
//	for _, r := range report.Races {
//		fmt.Println(r) // write-write race on acc[0] ...
//	}
//
// Because SPD3 is sound and precise for a given input, a single quiet run
// certifies that *no* schedule of that input races — and a reported race
// is real in some schedule, never a false alarm.
package spd3

import (
	"errors"
	"fmt"
	"time"

	"spd3/internal/detect"
	_ "spd3/internal/detectors" // register every detector implementation
	"spd3/internal/mem"
	"spd3/internal/sample"
	"spd3/internal/stats"
	"spd3/internal/task"
)

// Sentinel errors returned (wrapped) by New; test with errors.Is.
var (
	// ErrBadWorkers reports a negative Options.Workers.
	ErrBadWorkers = errors.New("spd3: negative worker count")
	// ErrUnknownDetector reports an Options.Detector name absent from
	// the registry.
	ErrUnknownDetector = errors.New("spd3: unknown detector")
	// ErrExecutorMismatch reports an explicit Options.Executor the
	// selected detector cannot run under (e.g. ESPBags with Pool).
	ErrExecutorMismatch = errors.New("spd3: detector incompatible with selected executor")
	// ErrBadSampling reports an unparsable Options.Sampling spec or
	// overhead budget.
	ErrBadSampling = errors.New("spd3: invalid sampling configuration")
)

// Ctx is the task context passed to every task body; it provides Async,
// Finish, ParallelFor and friends.
type Ctx = task.Ctx

// Race describes one detected data race.
type Race = detect.Race

// RaceKind classifies a race (read-write, write-write, write-read).
type RaceKind = detect.RaceKind

// Race kinds.
const (
	ReadWrite  = detect.ReadWrite
	WriteWrite = detect.WriteWrite
	WriteRead  = detect.WriteRead
)

// Footprint is the detector's analytic memory accounting.
type Footprint = detect.Footprint

// Array is an instrumented one-dimensional array.
type Array[T any] = mem.Array[T]

// Matrix is an instrumented two-dimensional array.
type Matrix[T any] = mem.Matrix[T]

// Var is an instrumented shared variable.
type Var[T any] = mem.Var[T]

// List is a growable instrumented sequence backed by a growable shadow
// region: no length is declared up front, elements never move, and
// unsynchronized parallel Appends are reported as races on the list's
// length cell.
type List[T any] = mem.List[T]

// Map is an instrumented map backed by a growable shadow region:
// structural mutations (inserting a new key, deleting a present one)
// write a dedicated structure cell and every lookup reads it, so
// unordered parallel inserts — or a lookup unordered with an insert —
// are reported as races, mirroring Go's dynamic map checker.
type Map[K comparable, V any] = mem.Map[K, V]

// Mutex is an instrumented lock (meaningful to FastTrack and Eraser).
type Mutex = mem.Mutex

// Executor selects how tasks are scheduled.
type Executor = task.ExecKind

// Executors.
const (
	// Auto (the default) lets the engine pick: Sequential when the
	// detector requires it (ESPBags), Pool otherwise.
	Auto = task.Auto
	// Pool schedules tasks on a fixed work-stealing worker pool.
	Pool = task.Pool
	// Goroutines runs one goroutine per task.
	Goroutines = task.Goroutines
	// Sequential runs asyncs inline, depth-first (required by ESPBags).
	Sequential = task.Sequential
)

// Detector selects the race-detection algorithm.
type Detector string

// Detectors.
const (
	// None disables detection (the measurement baseline).
	None Detector = "none"
	// SPD3 is the paper's parallel, O(1)-space, precise detector.
	SPD3 Detector = "spd3"
	// SPD3Mutex is SPD3 with per-word mutexes instead of the versioned
	// CAS protocol (the §5.4 ablation).
	SPD3Mutex Detector = "spd3-mutex"
	// ESPBags is the sequential baseline (forces Sequential executor).
	ESPBags Detector = "espbags"
	// FastTrack is the vector-clock baseline.
	FastTrack Detector = "fasttrack"
	// Eraser is the lockset baseline (imprecise).
	Eraser Detector = "eraser"
	// OSLabel is Offset-Span labeling (Mellor-Crummey 1991), the §7
	// related-work baseline. Sound only for strict fork-join programs
	// (every finish contains only asyncs and its owner neither spawns
	// outside it nor touches shared data inside it); general
	// async/finish programs need SPD3.
	OSLabel Detector = "oslabel"
)

// Detectors lists every registered detector kind, sorted by name. The
// list comes from the detect registry, so detectors added by a new
// algorithm package (one file with an init-time detect.Register call)
// appear here, in the harness tables, and in the cmd tools without
// further wiring.
func Detectors() []Detector {
	names := detect.Names()
	out := make([]Detector, len(names))
	for i, n := range names {
		out[i] = Detector(n)
	}
	return out
}

// Stats is the merged observability snapshot of one Run: shadow-protocol
// outcomes (CAS clean/publish/retry, mutex ops), DMHP fast-path vs walk
// vs memo-hit counts, task spawn/steal/inline counts, per-region
// read/write traffic, and the detector's memory footprint. It has a
// stable String() one-liner, a Map() of wire-named scalars, and a JSON
// form (see stats.Snapshot).
type Stats = stats.Snapshot

// Options configures an Engine.
type Options struct {
	// Workers is the pool size (Pool executor only). Zero means 1.
	Workers int
	// Executor selects the scheduling strategy. The default, Auto,
	// resolves to Pool — or Sequential when the detector requires it
	// (ESPBags). Explicitly selecting an executor the detector cannot
	// run under is an error.
	Executor Executor
	// Detector selects the algorithm; default SPD3.
	Detector Detector
	// HaltOnFirstRace reproduces the paper's halt semantics: after the
	// first race, detectors stop checking. When false (default), races
	// are deduplicated per location and execution continues.
	HaltOnFirstRace bool
	// MaxRaces caps recorded races in log mode (default 1024).
	MaxRaces int
	// OnRace, when non-nil, streams each distinct race to the callback
	// instead of buffering it in Report.Races, so arbitrarily long runs
	// never accumulate reports (and MaxRaces does not apply). Returning
	// true halts detection like HaltOnFirstRace does after the first
	// race. The callback runs on the reporting task's goroutine and may
	// be invoked concurrently for distinct races.
	OnRace func(Race) (halt bool)
	// CaptureSites attaches the file:line of the access completing a
	// race to the report (supported by the SPD3 detectors). Costs one
	// runtime.Caller per instrumented access; off by default.
	CaptureSites bool
	// NoStats disables the observability counters (Report.Stats becomes
	// a zero snapshot except for Footprint). Counters are on by default
	// and near-free — hot producers batch in task-local integers and the
	// merge happens once per Run — so this exists mainly to measure that
	// claim (the ablation-dmhp benchmark runs both ways).
	NoStats bool
	// Sampling configures the dynamic check-sampling subsystem
	// (internal/sample): gate each access's race check behind a cheap
	// probabilistic coin so detection can run inside live serving at a
	// chosen cost. The zero value means off — every check runs, byte-
	// identical to an unsampled engine.
	Sampling SamplingOptions
}

// SamplingOptions selects a check-sampling strategy and, optionally, an
// overhead budget for the feedback governor.
type SamplingOptions struct {
	// Spec is "mode:rate" — "bernoulli:0.05", "page:0.01", "burst:0.1"
	// — or ""/"off" for disabled. See internal/sample for the strategy
	// semantics and the soundness argument (sampling can only miss
	// races, never invent them).
	Spec string
	// OverheadBudget, when nonzero, enables the governor: after every
	// Run it re-estimates the checking overhead from the run's stats
	// counters and wall clock and retunes the rate toward this target
	// fraction (0.05 = 5%). Zero keeps the rate fixed at Spec's.
	OverheadBudget float64
}

// Engine couples a task runtime with a detector, a race sink, and a
// stats recorder.
type Engine struct {
	rt   *task.Runtime
	det  detect.Detector
	sink *detect.Sink
	rec  *stats.Recorder
	gov  *sample.Governor // nil when sampling is off
}

// New validates opts and builds an Engine. The detector is constructed
// through the detect registry, so any registered name — including hidden
// ablation variants — is accepted. Invalid options are reported through
// the typed sentinels ErrBadWorkers, ErrUnknownDetector, and
// ErrExecutorMismatch, which callers match with errors.Is.
func New(opts Options) (*Engine, error) {
	if opts.Detector == "" {
		opts.Detector = SPD3
	}
	if opts.Workers < 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadWorkers, opts.Workers)
	}
	if !detect.Registered(string(opts.Detector)) {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDetector, opts.Detector)
	}
	sink := detect.NewSink(opts.HaltOnFirstRace, opts.MaxRaces)
	var rec *stats.Recorder
	if !opts.NoStats {
		rec = stats.New(0)
		sink.SetStats(rec.Shard(0))
	}
	if opts.OnRace != nil {
		sink.SetOnRace(opts.OnRace)
	}
	var gov *sample.Governor
	var smp *sample.Sampler
	if opts.Sampling.Spec != "" || opts.Sampling.OverheadBudget != 0 {
		cfg, err := sample.Parse(opts.Sampling.Spec)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSampling, err)
		}
		if b := opts.Sampling.OverheadBudget; b < 0 || b > 1 {
			return nil, fmt.Errorf("%w: overhead budget %v out of [0, 1]", ErrBadSampling, b)
		}
		if cfg.Mode != sample.Off {
			gov = sample.NewGovernor(cfg, opts.Sampling.OverheadBudget)
			smp = gov.Sampler()
		}
	}
	det, err := detect.New(string(opts.Detector), detect.FactoryOpts{Sink: sink, Stats: rec, Sampler: smp})
	if err != nil {
		return nil, err
	}
	if det.RequiresSequential() && opts.Executor != Auto && opts.Executor != Sequential {
		return nil, fmt.Errorf("%w: detector %q requires sequential execution", ErrExecutorMismatch, opts.Detector)
	}
	rt, err := task.New(task.Config{
		Workers:      opts.Workers,
		Executor:     opts.Executor,
		Detector:     det,
		CaptureSites: opts.CaptureSites,
		Stats:        rec,
	})
	if err != nil {
		return nil, err
	}
	return &Engine{rt: rt, det: det, sink: sink, rec: rec, gov: gov}, nil
}

// SamplingRate returns the engine's current check-sampling rate: the
// governor's live (possibly adapted) rate, or 0 when sampling is off.
func (e *Engine) SamplingRate() float64 {
	if e.gov == nil {
		return 0
	}
	return e.gov.Rate()
}

// Report summarizes one Run.
type Report struct {
	// Races holds the detected races, sorted by location. Empty when
	// Options.OnRace streamed them instead.
	Races []Race
	// Truncated is set when the race limit was hit.
	Truncated bool
	// Stats is the run's merged observability snapshot (zero except for
	// Stats.Footprint when Options.NoStats is set). The detector's
	// memory accounting lives in Stats.Footprint; the deprecated
	// top-level Footprint field it duplicated has been removed.
	Stats Stats
	// Duration is the wall-clock time of the run.
	Duration time.Duration
}

// RaceFree reports whether the run observed no races. For the SPD3 and
// ESPBags detectors this certifies that no schedule of this input races.
// With Options.OnRace set, races are streamed rather than buffered and
// the callback — not this predicate — is the authority.
func (r *Report) RaceFree() bool { return len(r.Races) == 0 }

// Run executes root as the main task under the implicit top-level finish
// and returns the detection report for this run. The returned error
// reflects task panics, not races.
//
// An Engine (with its instrumented containers) may be reused across
// consecutive Runs: later runs are correctly treated as happening after
// earlier ones, and each Report contains only the races first detected
// during that run (duplicate reports for a location already reported in
// an earlier run are suppressed).
func (e *Engine) Run(root func(*Ctx)) (*Report, error) {
	mark := e.sink.Mark()
	e.rec.Reset()
	start := time.Now()
	err := e.rt.Run(root)
	elapsed := time.Since(start)
	snap := e.rec.Snapshot()
	snap.Footprint = e.det.Footprint()
	if e.gov != nil {
		// One feedback observation per Run: long-lived engines (serving
		// loops, repeated measurements) converge onto the budget.
		e.gov.ObserveSnapshot(snap, elapsed)
	}
	rep := &Report{
		Races:     e.sink.RacesSince(mark),
		Truncated: e.sink.Capped(),
		Stats:     snap,
		Duration:  elapsed,
	}
	return rep, err
}

// NewArray allocates an instrumented array of n elements of type T.
func NewArray[T any](e *Engine, name string, n int) *Array[T] {
	return mem.NewArray[T](e.rt, name, n)
}

// NewMatrix allocates an instrumented rows×cols matrix.
func NewMatrix[T any](e *Engine, name string, rows, cols int) *Matrix[T] {
	return mem.NewMatrix[T](e.rt, name, rows, cols)
}

// NewVar allocates an instrumented shared variable.
func NewVar[T any](e *Engine, name string, init T) *Var[T] {
	return mem.NewVar(e.rt, name, init)
}

// NewList allocates an empty growable instrumented list.
func NewList[T any](e *Engine, name string) *List[T] {
	return mem.NewList[T](e.rt, name)
}

// NewMap allocates an empty instrumented map.
func NewMap[K comparable, V any](e *Engine, name string) *Map[K, V] {
	return mem.NewMap[K, V](e.rt, name)
}

// NewMutex allocates an instrumented lock.
func NewMutex(e *Engine) *Mutex { return mem.NewMutex(e.rt) }

// Ctx-scoped constructors. Containers allocated from inside a task body
// — where only the task's *Ctx is in scope, the situation mechanical
// instrumentation (cmd/spd3inst) produces — use these forms. They differ
// from the *Engine forms only in creation-point semantics: allocation
// zeroes the container, and the In forms record those initializing
// writes against the allocating task, so a task that reads the
// container unordered with the task that created it is correctly
// reported. The *Engine forms are the same constructors with the
// creation writes elided, which is sound exactly because pre-Run
// allocation happens-before every task (see mem's package docs).

// NewArrayIn allocates an instrumented array from inside a task body,
// attributing the initializing writes to c's task.
func NewArrayIn[T any](c *Ctx, name string, n int) *Array[T] {
	return mem.NewArrayIn[T](c, name, n)
}

// NewMatrixIn allocates an instrumented matrix from inside a task body,
// attributing the initializing writes to c's task.
func NewMatrixIn[T any](c *Ctx, name string, rows, cols int) *Matrix[T] {
	return mem.NewMatrixIn[T](c, name, rows, cols)
}

// NewVarIn allocates an instrumented variable from inside a task body,
// attributing the initializing write to c's task.
func NewVarIn[T any](c *Ctx, name string, init T) *Var[T] {
	return mem.NewVarIn(c, name, init)
}

// NewListIn allocates an empty instrumented list from inside a task
// body.
func NewListIn[T any](c *Ctx, name string) *List[T] {
	return mem.NewListIn[T](c, name)
}

// NewMapIn allocates an empty instrumented map from inside a task body.
func NewMapIn[K comparable, V any](c *Ctx, name string) *Map[K, V] {
	return mem.NewMapIn[K, V](c, name)
}

// NewMutexIn allocates an instrumented lock from inside a task body.
func NewMutexIn(c *Ctx) *Mutex { return mem.NewMutexIn(c) }

// Cilk provides Cilk-style spawn/sync parallelism as sugar over
// async/finish (§2: async/finish generalizes spawn/sync, so every
// detector works on Cilk programs unchanged). Use RunCilk to enter a
// procedure.
type Cilk = task.Cilk

// RunCilk executes body as a Cilk procedure (with an implicit final
// sync) on the current task.
func RunCilk(c *Ctx, body func(k *Cilk)) { task.RunCilk(c, body) }

// Barrier is a cyclic barrier in the style of the original JGF codes
// (§6.3). SPD3 derives no ordering from barriers — its model is pure
// async/finish — but FastTrack consumes their events (like RoadRunner's
// special barrier handling) and accepts barrier-phased sharing. See
// task.Barrier for executor requirements.
type Barrier = task.Barrier

// NewBarrier allocates a barrier for n participants.
func NewBarrier(e *Engine, n int) *Barrier { return e.rt.NewBarrier(n) }

// Accumulator is an HJ-style finish accumulator: a reduction cell that
// parallel tasks Put into, race-free by construction.
type Accumulator[T any] = mem.Accumulator[T]

// NewAccumulator allocates an accumulator over an associative,
// commutative combine function.
func NewAccumulator[T any](e *Engine, combine func(a, b T) T) *Accumulator[T] {
	return mem.NewAccumulator(e.rt, combine)
}

// RegisterStaticElided records n container access sites whose dynamic
// race checks were removed at compile time by the §5.5 static check
// eliminator (cmd/spd3inst's checkelim post-pass, or spd3vet -fix).
// Optimized packages carry a generated init that calls this once; every
// Report.Stats then exposes the process-wide total under the
// mem.checks_elided_static counter, so the measured dynamic check
// counts can be read against what the optimizer proved away.
func RegisterStaticElided(n int) { stats.AddStaticElided(int64(n)) }
