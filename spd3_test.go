package spd3_test

import (
	"errors"
	"strings"
	"testing"

	"spd3"
)

func TestQuickstartRaceDetected(t *testing.T) {
	eng, err := spd3.New(spd3.Options{Workers: 4, Detector: spd3.SPD3})
	if err != nil {
		t.Fatal(err)
	}
	acc := spd3.NewArray[int](eng, "acc", 1)
	rep, err := eng.Run(func(c *spd3.Ctx) {
		c.FinishAsync(8, func(c *spd3.Ctx, i int) {
			acc.Set(c, 0, i)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RaceFree() {
		t.Fatal("parallel writes not reported")
	}
	if rep.Races[0].Region != "acc" || rep.Races[0].Kind != spd3.WriteWrite {
		t.Fatalf("unexpected race %v", rep.Races[0])
	}
	if !strings.Contains(rep.Races[0].String(), "write-write race on acc[0]") {
		t.Fatalf("race string = %q", rep.Races[0].String())
	}
}

func TestRaceFreeCertified(t *testing.T) {
	for _, det := range []spd3.Detector{spd3.SPD3, spd3.SPD3Mutex, spd3.ESPBags, spd3.FastTrack} {
		eng, err := spd3.New(spd3.Options{Workers: 4, Detector: det})
		if err != nil {
			t.Fatal(err)
		}
		a := spd3.NewArray[float64](eng, "a", 64)
		rep, err := eng.Run(func(c *spd3.Ctx) {
			c.ParallelFor(0, 64, 1, func(c *spd3.Ctx, i int) {
				a.Set(c, i, float64(i))
			})
			sum := 0.0
			for i := 0; i < 64; i++ {
				sum += a.Get(c, i)
			}
			a.Set(c, 0, sum)
		})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.RaceFree() {
			t.Fatalf("%s: false positives: %v", det, rep.Races)
		}
		if rep.Duration <= 0 {
			t.Errorf("%s: missing duration", det)
		}
	}
}

func TestMatrixAndVar(t *testing.T) {
	eng, err := spd3.New(spd3.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := spd3.NewMatrix[int](eng, "m", 4, 4)
	v := spd3.NewVar(eng, "v", 7)
	rep, err := eng.Run(func(c *spd3.Ctx) {
		c.FinishAsync(4, func(c *spd3.Ctx, i int) {
			for j := 0; j < 4; j++ {
				m.Set(c, i, j, i*4+j)
			}
		})
		total := 0
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				total += m.Get(c, i, j)
			}
		}
		v.Set(c, total+v.Get(c))
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.RaceFree() {
		t.Fatalf("races: %v", rep.Races)
	}
}

func TestMutexSatisfiesFastTrack(t *testing.T) {
	eng, err := spd3.New(spd3.Options{Workers: 4, Detector: spd3.FastTrack})
	if err != nil {
		t.Fatal(err)
	}
	v := spd3.NewVar(eng, "v", 0)
	mu := spd3.NewMutex(eng)
	rep, err := eng.Run(func(c *spd3.Ctx) {
		c.FinishAsync(8, func(c *spd3.Ctx, i int) {
			mu.Lock(c)
			v.Set(c, v.Get(c)+1)
			mu.Unlock(c)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.RaceFree() {
		t.Fatalf("locked counter flagged: %v", rep.Races)
	}
}

func TestHaltOnFirstRace(t *testing.T) {
	eng, err := spd3.New(spd3.Options{Detector: spd3.SPD3, HaltOnFirstRace: true})
	if err != nil {
		t.Fatal(err)
	}
	a := spd3.NewArray[int](eng, "a", 16)
	rep, err := eng.Run(func(c *spd3.Ctx) {
		c.Finish(func(c *spd3.Ctx) {
			for i := 0; i < 16; i++ {
				i := i
				c.Async(func(c *spd3.Ctx) { a.Set(c, i, 1) })
				c.Async(func(c *spd3.Ctx) { a.Set(c, i, 2) })
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Races) != 1 {
		t.Fatalf("halt mode recorded %d races, want 1", len(rep.Races))
	}
}

func TestESPBagsExecutorResolution(t *testing.T) {
	// Explicitly pairing ESPBags with a parallel executor is an error —
	// the engine no longer silently overrides the caller's choice.
	_, err := spd3.New(spd3.Options{Workers: 8, Executor: spd3.Pool, Detector: spd3.ESPBags})
	if err == nil {
		t.Fatal("ESPBags with explicit Pool executor accepted")
	}
	if !errors.Is(err, spd3.ErrExecutorMismatch) {
		t.Fatalf("error is not ErrExecutorMismatch: %v", err)
	}
	if !strings.Contains(err.Error(), "sequential") {
		t.Fatalf("error does not explain the executor requirement: %v", err)
	}

	// Leaving the executor at the default (Auto) resolves to Sequential
	// and the detector works.
	eng, err := spd3.New(spd3.Options{Workers: 8, Detector: spd3.ESPBags})
	if err != nil {
		t.Fatal(err)
	}
	a := spd3.NewArray[int](eng, "a", 2)
	rep, err := eng.Run(func(c *spd3.Ctx) {
		c.FinishAsync(2, func(c *spd3.Ctx, i int) { a.Set(c, 0, i) })
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RaceFree() {
		t.Fatal("ESP-bags missed the write-write race")
	}
}

func TestBarrierFacade(t *testing.T) {
	// FastTrack certifies barrier-phased sharing; SPD3 reports it (its
	// model is async/finish only) — the §6.3 behaviour through the
	// public API.
	verdict := func(det spd3.Detector) bool {
		eng, err := spd3.New(spd3.Options{Workers: 4, Detector: det})
		if err != nil {
			t.Fatal(err)
		}
		slots := spd3.NewArray[int](eng, "slots", 4)
		bar := spd3.NewBarrier(eng, 4)
		rep, err := eng.Run(func(c *spd3.Ctx) {
			c.FinishAsync(4, func(c *spd3.Ctx, id int) {
				for p := 0; p < 3; p++ {
					slots.Set(c, id, p)
					bar.Await(c)
					total := 0
					for o := 0; o < 4; o++ {
						total += slots.Get(c, o)
					}
					bar.Await(c)
					_ = total
				}
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.RaceFree()
	}
	if !verdict(spd3.FastTrack) {
		t.Error("FastTrack did not credit barrier ordering")
	}
	if verdict(spd3.SPD3) {
		t.Error("SPD3 credited barrier ordering it cannot model")
	}
}

func TestOSLabelFacade(t *testing.T) {
	eng, err := spd3.New(spd3.Options{Workers: 2, Detector: spd3.OSLabel})
	if err != nil {
		t.Fatal(err)
	}
	a := spd3.NewArray[int](eng, "a", 4)
	rep, err := eng.Run(func(c *spd3.Ctx) {
		c.Finish(func(c *spd3.Ctx) {
			c.Async(func(c *spd3.Ctx) { a.Set(c, 0, 1) })
			c.Async(func(c *spd3.Ctx) { a.Set(c, 0, 2) })
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RaceFree() {
		t.Fatal("oslabel missed a strict fork-join race")
	}
}

func TestCaptureSites(t *testing.T) {
	eng, err := spd3.New(spd3.Options{Detector: spd3.SPD3, Executor: spd3.Sequential,
		CaptureSites: true})
	if err != nil {
		t.Fatal(err)
	}
	a := spd3.NewArray[int](eng, "a", 1)
	rep, err := eng.Run(func(c *spd3.Ctx) {
		c.FinishAsync(2, func(c *spd3.Ctx, i int) {
			a.Set(c, 0, i) // the race completes here
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RaceFree() {
		t.Fatal("race not reported")
	}
	if !strings.Contains(rep.Races[0].CurStep, "spd3_test.go:") {
		t.Fatalf("race lacks source site: %v", rep.Races[0])
	}
}

func TestUnknownDetectorRejected(t *testing.T) {
	_, err := spd3.New(spd3.Options{Detector: "quantum"})
	if err == nil {
		t.Fatal("unknown detector accepted")
	}
	if !errors.Is(err, spd3.ErrUnknownDetector) {
		t.Fatalf("error is not ErrUnknownDetector: %v", err)
	}
}

func TestNegativeWorkersRejected(t *testing.T) {
	_, err := spd3.New(spd3.Options{Workers: -1})
	if err == nil {
		t.Fatal("negative worker count accepted")
	}
	if !errors.Is(err, spd3.ErrBadWorkers) {
		t.Fatalf("error is not ErrBadWorkers: %v", err)
	}
}

func TestDetectorsList(t *testing.T) {
	ds := spd3.Detectors()
	if len(ds) != 7 {
		t.Fatalf("Detectors() = %v", ds)
	}
	for _, d := range ds {
		if d == spd3.ESPBags {
			return
		}
	}
	t.Fatal("ESPBags missing from Detectors()")
}

func TestFootprintReported(t *testing.T) {
	eng, err := spd3.New(spd3.Options{Detector: spd3.SPD3})
	if err != nil {
		t.Fatal(err)
	}
	a := spd3.NewArray[int](eng, "a", 1000)
	// Shadow memory is paged in lazily, so touch an element to
	// materialize a page.
	rep, err := eng.Run(func(c *spd3.Ctx) { a.Set(c, 0, 1) })
	if err != nil {
		t.Fatal(err)
	}
	fp := rep.Stats.Footprint
	if fp.ShadowBytes == 0 {
		t.Fatal("footprint not reported")
	}
	if fp.Total() < fp.ShadowBytes {
		t.Fatal("Total below ShadowBytes")
	}
}

func TestEngineReusable(t *testing.T) {
	eng, err := spd3.New(spd3.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	a := spd3.NewArray[int](eng, "a", 8)
	for round := 0; round < 3; round++ {
		rep, err := eng.Run(func(c *spd3.Ctx) {
			c.FinishAsync(8, func(c *spd3.Ctx, i int) { a.Update(c, i, func(v int) int { return v + 1 }) })
		})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.RaceFree() {
			t.Fatalf("round %d: %v", round, rep.Races)
		}
	}
	for i, v := range a.Unchecked() {
		if v != 3 {
			t.Fatalf("a[%d] = %d, want 3", i, v)
		}
	}
}

func TestSequentialExecutorOption(t *testing.T) {
	eng, err := spd3.New(spd3.Options{Executor: spd3.Sequential, Detector: spd3.SPD3})
	if err != nil {
		t.Fatal(err)
	}
	order := spd3.NewArray[int](eng, "order", 4)
	// pos is deliberately uninstrumented plain state: safe only because
	// the sequential executor runs asyncs inline, which is exactly what
	// this test asserts.
	pos := 0
	if _, err := eng.Run(func(c *spd3.Ctx) {
		c.Finish(func(c *spd3.Ctx) {
			for i := 0; i < 4; i++ {
				i := i
				c.Async(func(c *spd3.Ctx) {
					order.Set(c, pos, i)
					pos++
				})
			}
		})
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range order.Unchecked() {
		if v != i {
			t.Fatalf("sequential executor ran out of order: %v", order.Unchecked())
		}
	}
}

func TestListGrowsAndDetects(t *testing.T) {
	// Sequential appends then parallel reads are race-free; the list's
	// shadow region grows with it (no declared length).
	eng, err := spd3.New(spd3.Options{Workers: 4, Detector: spd3.SPD3})
	if err != nil {
		t.Fatal(err)
	}
	l := spd3.NewList[int](eng, "list")
	rep, err := eng.Run(func(c *spd3.Ctx) {
		c.Finish(func(c *spd3.Ctx) {
			for i := 0; i < 10000; i++ {
				l.Append(c, i*i)
			}
		})
		c.ParallelFor(0, 10000, 1, func(c *spd3.Ctx, i int) {
			if got := l.Get(c, i); got != i*i {
				t.Errorf("l[%d] = %d", i, got)
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.RaceFree() {
		t.Fatalf("ordered append/read flagged: %v", rep.Races)
	}
	if l.UncheckedAt(9999) == nil || *l.UncheckedAt(9999) != 9999*9999 {
		t.Fatal("UncheckedAt broken")
	}

	// Unsynchronized parallel appends race on the list's length cell.
	eng2, err := spd3.New(spd3.Options{Workers: 4, Detector: spd3.SPD3})
	if err != nil {
		t.Fatal(err)
	}
	l2 := spd3.NewList[int](eng2, "list2")
	rep2, err := eng2.Run(func(c *spd3.Ctx) {
		c.FinishAsync(4, func(c *spd3.Ctx, i int) { l2.Append(c, i) })
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.RaceFree() {
		t.Fatal("parallel appends not reported as a race")
	}
}
