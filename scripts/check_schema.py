#!/usr/bin/env python3
"""Validate a JSON document against a schema in docs/schema/.

Stdlib-only on purpose (CI has no jsonschema package): implements the
small JSON-Schema subset those files use — type (string or list of
strings), enum, required, properties, items, minimum. Unknown schema
keywords are ignored, unknown *instance* keys are allowed (the server
may grow its envelopes; the schema pins what must stay).

Usage: check_schema.py SCHEMA.json INSTANCE.json
       check_schema.py SCHEMA.json -          # instance on stdin
Exits non-zero with a path-qualified message on the first violation.
"""

import json
import sys

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
    "null": type(None),
}


def type_ok(value, name):
    py = TYPES[name]
    if isinstance(value, bool):  # bool is an int subclass; keep them distinct
        return name == "boolean"
    return isinstance(value, py)


def check(schema, value, path):
    t = schema.get("type")
    if t is not None:
        names = t if isinstance(t, list) else [t]
        if not any(type_ok(value, n) for n in names):
            fail(path, f"type is {json.dumps(value)[:60]}, want {' or '.join(names)}")
        if value is None:
            return  # a permitted null has no members to descend into
    if "enum" in schema and value not in schema["enum"]:
        fail(path, f"{json.dumps(value)} not in enum {schema['enum']}")
    if "minimum" in schema and isinstance(value, (int, float)) and not isinstance(value, bool):
        if value < schema["minimum"]:
            fail(path, f"{value} < minimum {schema['minimum']}")
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                fail(path, f"missing required member {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                check(sub, value[key], f"{path}.{key}")
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            check(schema["items"], item, f"{path}[{i}]")


def fail(path, msg):
    sys.exit(f"schema violation at {path}: {msg}")


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__.strip())
    with open(sys.argv[1]) as f:
        schema = json.load(f)
    if sys.argv[2] == "-":
        instance = json.load(sys.stdin)
    else:
        with open(sys.argv[2]) as f:
            instance = json.load(f)
    check(schema, instance, "$")
    print(f"ok: {sys.argv[2]} conforms to {sys.argv[1]}")


if __name__ == "__main__":
    main()
