package spd3_test

import (
	"strings"
	"testing"

	"spd3"
)

// TestOnRaceStreaming: with Options.OnRace set, each distinct race goes
// to the callback and Report.Races stays empty.
func TestOnRaceStreaming(t *testing.T) {
	var got []spd3.Race
	eng, err := spd3.New(spd3.Options{
		Executor: spd3.Sequential, // callback runs inline: no locking needed
		OnRace:   func(r spd3.Race) bool { got = append(got, r); return false },
	})
	if err != nil {
		t.Fatal(err)
	}
	a := spd3.NewArray[int](eng, "a", 4)
	rep, err := eng.Run(func(c *spd3.Ctx) {
		c.Finish(func(c *spd3.Ctx) {
			for i := 0; i < 4; i++ {
				i := i
				c.Async(func(c *spd3.Ctx) { a.Set(c, i, 1) })
				c.Async(func(c *spd3.Ctx) { a.Set(c, i, 2) })
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Races) != 0 {
		t.Fatalf("streaming mode buffered %d races", len(rep.Races))
	}
	if len(got) != 4 {
		t.Fatalf("callback received %d races, want 4 (one per location)", len(got))
	}
	seen := map[int]bool{}
	for _, r := range got {
		if r.Region != "a" || r.Kind != spd3.WriteWrite {
			t.Fatalf("unexpected race %v", r)
		}
		if seen[r.Index] {
			t.Fatalf("location a[%d] streamed twice", r.Index)
		}
		seen[r.Index] = true
	}
}

// TestOnRaceHalt: returning true from the callback halts detection like
// HaltOnFirstRace does.
func TestOnRaceHalt(t *testing.T) {
	var calls int
	eng, err := spd3.New(spd3.Options{
		Executor: spd3.Sequential,
		OnRace:   func(spd3.Race) bool { calls++; return true },
	})
	if err != nil {
		t.Fatal(err)
	}
	a := spd3.NewArray[int](eng, "a", 16)
	if _, err := eng.Run(func(c *spd3.Ctx) {
		c.Finish(func(c *spd3.Ctx) {
			for i := 0; i < 16; i++ {
				i := i
				c.Async(func(c *spd3.Ctx) { a.Set(c, i, 1) })
				c.Async(func(c *spd3.Ctx) { a.Set(c, i, 2) })
			}
		})
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("halting callback invoked %d times, want 1", calls)
	}
}

// TestStatsReported: a default engine surfaces nonzero counters for the
// shadow protocol, DMHP resolution, scheduling, and memory traffic.
func TestStatsReported(t *testing.T) {
	eng, err := spd3.New(spd3.Options{Workers: 4, Detector: spd3.SPD3})
	if err != nil {
		t.Fatal(err)
	}
	src := spd3.NewArray[int](eng, "src", 8)
	out := spd3.NewArray[int](eng, "out", 4)
	rep, err := eng.Run(func(c *spd3.Ctx) {
		c.FinishAsync(4, func(c *spd3.Ctx, id int) {
			total := 0
			for i := 0; i < 8; i++ {
				total += src.Get(c, i) // read-shared: exercises DMHP
			}
			out.Set(c, id, total) // disjoint writes
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.RaceFree() {
		t.Fatalf("unexpected races: %v", rep.Races)
	}
	m := rep.Stats.Map()
	for _, key := range []string{"cas.publish", "task.spawn", "mem.reads", "mem.writes"} {
		if m[key] == 0 {
			t.Errorf("%s = 0, want > 0 (map: %v)", key, m)
		}
	}
	if m["dmhp.fast"]+m["dmhp.walk"]+m["dmhp.memo_hit"] == 0 {
		t.Errorf("no DMHP queries recorded (map: %v)", m)
	}
	if rep.Stats.Footprint.ShadowBytes == 0 {
		t.Errorf("Stats.Footprint not populated: %+v", rep.Stats.Footprint)
	}
	if !strings.Contains(rep.Stats.String(), "mem:") {
		t.Errorf("Stats.String() = %q", rep.Stats.String())
	}
}

// TestNoStats: the ablation switch zeroes every counter but keeps the
// detector's footprint accounting (which is analytic, not counted).
func TestNoStats(t *testing.T) {
	eng, err := spd3.New(spd3.Options{Workers: 4, NoStats: true})
	if err != nil {
		t.Fatal(err)
	}
	a := spd3.NewArray[int](eng, "a", 64)
	rep, err := eng.Run(func(c *spd3.Ctx) {
		c.FinishAsync(4, func(c *spd3.Ctx, id int) {
			for i := id * 16; i < (id+1)*16; i++ {
				a.Set(c, i, i)
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for key, v := range rep.Stats.Map() {
		if strings.HasPrefix(key, "footprint.") {
			continue
		}
		if v != 0 {
			t.Errorf("NoStats left %s = %d", key, v)
		}
	}
	if rep.Stats.Footprint.ShadowBytes == 0 {
		t.Error("NoStats must not disable footprint accounting")
	}
}

// TestEngineReuseStatsReset: counters cover exactly one Run — a reused
// engine reports per-run snapshots, not a running total.
func TestEngineReuseStatsReset(t *testing.T) {
	eng, err := spd3.New(spd3.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	a := spd3.NewArray[int](eng, "a", 8)
	var writes []int64
	for round := 0; round < 3; round++ {
		rep, err := eng.Run(func(c *spd3.Ctx) {
			c.FinishAsync(8, func(c *spd3.Ctx, i int) { a.Set(c, i, i) })
		})
		if err != nil {
			t.Fatal(err)
		}
		writes = append(writes, rep.Stats.Writes)
	}
	for round, w := range writes {
		if w != 8 {
			t.Errorf("round %d: Stats.Writes = %d, want 8 (stale counters?)", round, w)
		}
	}
}
