// Benchmarks regenerating the paper's evaluation artifacts as testing.B
// targets — one benchmark function per table/figure, with sub-benchmarks
// per (program, tool, workers) cell:
//
//	go test -bench=Fig3 -benchmem          # Figure 3 cells
//	go test -bench=. -benchmem             # everything
//
// Each cell reports ns/op for one full benchmark run; slowdowns are the
// ratios of the matching base/detector cells. Memory-oriented cells
// (Table 3, Figure 6) additionally report the detector's analytic
// footprint as the custom metric "shadow-MB". cmd/experiments prints the
// same data as the paper's ready-made tables.
package spd3

import (
	"testing"

	"spd3/internal/bench"
	"spd3/internal/harness"
	"spd3/internal/task"
)

// benchScale keeps full-matrix `go test -bench=.` runs tractable; raise
// it (or use cmd/experiments -scale) for steadier numbers.
const benchScale = 0.5

// cell runs one benchmark configuration b.N times.
func cell(b *testing.B, bm *bench.Benchmark, tool harness.Tool, workers int, chunked bool) {
	in := bench.Input{Scale: benchScale, Chunked: chunked}
	b.ReportAllocs()
	var foot int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det, rec := harness.NewDetector(tool)
		rt, err := task.New(task.Config{Executor: task.Auto, Workers: workers, Detector: det, Stats: rec})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := bm.Run(rt, in); err != nil {
			b.Fatal(err)
		}
		foot = det.Footprint().Total()
	}
	b.ReportMetric(float64(foot)/(1<<20), "shadow-MB")
}

// BenchmarkFig3 regenerates Figure 3's cells: every benchmark, unchunked,
// base vs SPD3, across the worker sweep.
func BenchmarkFig3(b *testing.B) {
	for _, bm := range bench.All() {
		for _, workers := range []int{1, 4, 16} {
			for _, tool := range []harness.Tool{harness.Base, harness.SPD3} {
				b.Run(bm.Name+"/"+string(tool)+"/w"+itoa(workers), func(b *testing.B) {
					cell(b, bm, tool, workers, false)
				})
			}
		}
	}
}

// BenchmarkFig4 regenerates Figure 4's cells: ESP-bags (sequential) vs
// SPD3 (parallel) on every benchmark, against the parallel base.
func BenchmarkFig4(b *testing.B) {
	for _, bm := range bench.All() {
		for _, tool := range []harness.Tool{harness.Base, harness.ESPBags, harness.SPD3} {
			b.Run(bm.Name+"/"+string(tool), func(b *testing.B) {
				cell(b, bm, tool, 16, false)
			})
		}
	}
}

// BenchmarkTable2 regenerates Table 2's cells: the JGF subset, chunked,
// under Eraser, FastTrack, and SPD3 at 16 workers.
func BenchmarkTable2(b *testing.B) {
	for _, bm := range bench.JGF() {
		for _, tool := range []harness.Tool{harness.Base, harness.Eraser, harness.FastTrack, harness.SPD3} {
			b.Run(bm.Name+"/"+string(tool), func(b *testing.B) {
				cell(b, bm, tool, 16, true)
			})
		}
	}
}

// BenchmarkTable3 regenerates Table 3's cells; read the shadow-MB metric
// for the memory comparison.
func BenchmarkTable3(b *testing.B) {
	for _, bm := range bench.JGF() {
		for _, tool := range []harness.Tool{harness.Eraser, harness.FastTrack, harness.SPD3} {
			b.Run(bm.Name+"/"+string(tool), func(b *testing.B) {
				cell(b, bm, tool, 16, true)
			})
		}
	}
}

// BenchmarkFig5 regenerates Figure 5's cells: chunked Crypt across the
// worker sweep under every tool.
func BenchmarkFig5(b *testing.B) {
	bm, err := bench.ByName("Crypt")
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8, 16} {
		for _, tool := range []harness.Tool{harness.Base, harness.Eraser, harness.FastTrack, harness.SPD3} {
			b.Run(string(tool)+"/w"+itoa(workers), func(b *testing.B) {
				cell(b, bm, tool, workers, true)
			})
		}
	}
}

// BenchmarkFig6 regenerates Figure 6's cells: chunked LUFact across the
// worker sweep; read the shadow-MB metric.
func BenchmarkFig6(b *testing.B) {
	bm, err := bench.ByName("LUFact")
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8, 16} {
		for _, tool := range []harness.Tool{harness.Eraser, harness.FastTrack, harness.SPD3} {
			b.Run(string(tool)+"/w"+itoa(workers), func(b *testing.B) {
				cell(b, bm, tool, workers, true)
			})
		}
	}
}

// BenchmarkAblationSync regenerates the §5.4 comparison: the versioned
// CAS protocol vs per-word mutexes on read-shared-heavy benchmarks.
func BenchmarkAblationSync(b *testing.B) {
	for _, name := range []string{"Crypt", "Matmul", "Sparse", "LUFact"} {
		bm, err := bench.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		for _, tool := range []harness.Tool{harness.SPD3, harness.SPD3Lock} {
			for _, workers := range []int{1, 16} {
				b.Run(name+"/"+string(tool)+"/w"+itoa(workers), func(b *testing.B) {
					cell(b, bm, tool, workers, false)
				})
			}
		}
	}
}

// BenchmarkAblationStepCache regenerates the §5.5-style check-cache
// comparison on a re-read-heavy kernel (helps) and a streaming kernel
// (hurts).
func BenchmarkAblationStepCache(b *testing.B) {
	for _, name := range []string{"RayTracer", "Sparse"} {
		bm, err := bench.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		for _, tool := range []harness.Tool{harness.SPD3, harness.SPD3Cache} {
			b.Run(name+"/"+string(tool), func(b *testing.B) {
				cell(b, bm, tool, 4, false)
			})
		}
	}
}

// BenchmarkAblationDMHP regenerates the DMHP fast-path comparison on the
// two monitoring-heavy kernels the ablation experiment highlights:
// pointer-walk SPD3 vs packed fingerprints vs fingerprints plus the
// per-task relation memo. The spd3-nostats cell isolates the cost of the
// observability counters (the Options.NoStats ablation).
func BenchmarkAblationDMHP(b *testing.B) {
	for _, name := range []string{"SOR", "LUFact"} {
		bm, err := bench.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		for _, tool := range []harness.Tool{harness.SPD3Walk, harness.SPD3FP, harness.SPD3, harness.SPD3NoStats} {
			b.Run(name+"/"+string(tool), func(b *testing.B) {
				cell(b, bm, tool, 4, false)
			})
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
