module spd3

go 1.24
