// Barriersor reproduces the paper's §6.3 observation with the public API:
// the original JGF benchmarks used persistent tasks synchronized by
// barriers. That style is race-free — but only a detector that
// understands barrier events (FastTrack here, like RoadRunner in the
// paper) can certify it. SPD3's model is pure async/finish, so it
// reports the cross-phase sharing; the fix the paper applied — and this
// example applies with -finish — is rewriting the barrier loop into
// finish form, which SPD3 then certifies for every schedule.
//
//	go run ./examples/barriersor            # barrier style: SPD3 reports, FastTrack quiet
//	go run ./examples/barriersor -finish    # finish style: SPD3 certifies
package main

import (
	"flag"
	"fmt"
	"log"

	"spd3"
)

const (
	parts = 4
	size  = 32
	iters = 4
	omega = 1.25
)

func main() {
	finishStyle := flag.Bool("finish", false, "use the paper's finish-based rewrite")
	flag.Parse()

	for _, det := range []spd3.Detector{spd3.SPD3, spd3.FastTrack} {
		races, err := run(det, *finishStyle)
		if err != nil {
			log.Fatal(err)
		}
		style := "barrier"
		if *finishStyle {
			style = "finish"
		}
		verdict := "race-free"
		if races > 0 {
			verdict = fmt.Sprintf("%d racy locations", races)
		}
		fmt.Printf("%-9s style under %-9s : %s\n", style, det, verdict)
	}
}

func run(det spd3.Detector, finishStyle bool) (int, error) {
	eng, err := spd3.New(spd3.Options{Workers: parts, Detector: det})
	if err != nil {
		return 0, err
	}
	g := spd3.NewMatrix[float64](eng, "G", size, size)
	for i, raw := 0, g.Unchecked(); i < len(raw); i++ {
		raw[i] = float64(i%13) * 1e-5
	}

	var report *spd3.Report
	if finishStyle {
		report, err = eng.Run(func(c *spd3.Ctx) { sorFinish(c, g) })
	} else {
		bar := spd3.NewBarrier(eng, parts)
		report, err = eng.Run(func(c *spd3.Ctx) { sorBarrier(c, g, bar) })
	}
	if err != nil {
		return 0, err
	}
	return len(report.Races), nil
}

// sorBarrier is the original JGF shape: persistent tasks, barrier per
// color sweep.
func sorBarrier(c *spd3.Ctx, g *spd3.Matrix[float64], bar *spd3.Barrier) {
	rows := size / parts
	c.FinishAsync(parts, func(c *spd3.Ctx, id int) {
		lo, hi := clamp(id*rows), clamp((id+1)*rows)
		for it := 0; it < iters; it++ {
			for color := 0; color < 2; color++ {
				sweep(c, g, lo, hi, color)
				bar.Await(c)
			}
		}
	})
}

// sorFinish is the paper's rewrite: one finish per color sweep.
func sorFinish(c *spd3.Ctx, g *spd3.Matrix[float64]) {
	rows := size / parts
	for it := 0; it < iters; it++ {
		for color := 0; color < 2; color++ {
			color := color
			c.FinishAsync(parts, func(c *spd3.Ctx, id int) {
				sweep(c, g, clamp(id*rows), clamp((id+1)*rows), color)
			})
		}
	}
}

func sweep(c *spd3.Ctx, g *spd3.Matrix[float64], lo, hi, color int) {
	for i := lo; i < hi; i++ {
		for j := 1 + (i+color)%2; j < size-1; j += 2 {
			v := omega/4*(g.Get(c, i-1, j)+g.Get(c, i+1, j)+
				g.Get(c, i, j-1)+g.Get(c, i, j+1)) +
				(1-omega)*g.Get(c, i, j)
			g.Set(c, i, j, v)
		}
	}
}

func clamp(r int) int {
	if r < 1 {
		return 1
	}
	if r > size-1 {
		return size - 1
	}
	return r
}
