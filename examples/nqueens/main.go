// NQueens counts n-queens solutions with task-recursive parallelism under
// race detection: each task owns a distinct slot of the result array, the
// pattern structured parallelism makes naturally race-free.
//
//	go run ./examples/nqueens [-n 9] [-workers 4]
package main

import (
	"flag"
	"fmt"
	"log"

	"spd3"
)

func main() {
	n := flag.Int("n", 9, "board size (<= 14)")
	workers := flag.Int("workers", 4, "pool workers")
	flag.Parse()
	if *n < 1 || *n > 14 {
		log.Fatal("n must be in 1..14")
	}

	eng, err := spd3.New(spd3.Options{Workers: *workers, Detector: spd3.SPD3})
	if err != nil {
		log.Fatal(err)
	}
	counts := spd3.NewArray[int](eng, "counts", *n)

	report, err := eng.Run(func(c *spd3.Ctx) {
		c.FinishAsync(*n, func(c *spd3.Ctx, col int) {
			bit := uint32(1) << col
			counts.Set(c, col, solve(*n, 1, bit, bit<<1, bit>>1))
		})
	})
	if err != nil {
		log.Fatal(err)
	}

	total := 0
	for _, v := range counts.Unchecked() {
		total += v
	}
	fmt.Printf("%d-queens solutions: %d (found in %v)\n", *n, total, report.Duration)
	if report.RaceFree() {
		fmt.Println("race-free: certified for every schedule of this input")
	} else {
		for _, r := range report.Races {
			fmt.Println("race:", r)
		}
	}
}

// solve counts completions from row given column/diagonal attack masks.
func solve(n, row int, cols, diagL, diagR uint32) int {
	if row == n {
		return 1
	}
	count := 0
	free := (uint32(1)<<n - 1) &^ (cols | diagL | diagR)
	for free != 0 {
		bit := free & -free
		free ^= bit
		count += solve(n, row+1, cols|bit, (diagL|bit)<<1, (diagR|bit)>>1)
	}
	return count
}
