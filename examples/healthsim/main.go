// Healthsim is a BOTS-Health-style discrete simulation of a referral
// hierarchy: patients arrive at leaf clinics, are treated up to capacity,
// and overflow is referred to the parent hospital.
//
// The -buggy flag switches referral to a single shared inbox counter per
// parent — the "obvious" implementation, which races when siblings refer
// concurrently. The correct version gives each child its own inbox slot.
// SPD3 pinpoints the difference:
//
//	go run ./examples/healthsim           # race-free, certified
//	go run ./examples/healthsim -buggy    # races on hospital.inbox
package main

import (
	"flag"
	"fmt"
	"log"

	"spd3"
)

const branch = 3

func main() {
	buggy := flag.Bool("buggy", false, "use the racy shared-inbox referral")
	steps := flag.Int("steps", 50, "simulation steps")
	depth := flag.Int("depth", 4, "tree depth")
	workers := flag.Int("workers", 4, "pool workers")
	flag.Parse()

	// Build the hierarchy level by level.
	parent := []int{-1}
	slot := []int{0}
	type level struct{ lo, hi int }
	var levels []level
	lo := 0
	for d := 0; d < *depth; d++ {
		hi := len(parent)
		levels = append(levels, level{lo, hi})
		if d < *depth-1 {
			for v := lo; v < hi; v++ {
				for s := 0; s < branch; s++ {
					parent = append(parent, v)
					slot = append(slot, s)
				}
			}
		}
		lo = hi
	}
	n := len(parent)

	eng, err := spd3.New(spd3.Options{Workers: *workers, Detector: spd3.SPD3})
	if err != nil {
		log.Fatal(err)
	}
	waiting := spd3.NewArray[int](eng, "clinic.waiting", n)
	treated := spd3.NewArray[int](eng, "clinic.treated", n)
	// Correct: one slot per child. Buggy: only slot 0 is used, shared
	// by all siblings.
	inbox := spd3.NewArray[int](eng, "hospital.inbox", n*branch)

	report, err := eng.Run(func(c *spd3.Ctx) {
		for s := 0; s < *steps; s++ {
			for d := len(levels) - 1; d >= 0; d-- {
				lv := levels[d]
				isLeaf := d == len(levels)-1
				s := s
				c.ParallelFor(lv.lo, lv.hi, 1, func(c *spd3.Ctx, v int) {
					w := waiting.Get(c, v)
					if !isLeaf {
						for k := 0; k < branch; k++ {
							w += inbox.Get(c, v*branch+k)
							inbox.Set(c, v*branch+k, 0)
						}
					}
					if isLeaf {
						w += arrivals(v, s)
					}
					capacity := 1 << (len(levels) - 1 - d)
					cure := min(w, capacity)
					w -= cure
					treated.Set(c, v, treated.Get(c, v)+cure)
					if p := parent[v]; p >= 0 && w > 0 {
						up := (w + 1) / 2
						w -= up
						k := slot[v]
						if *buggy {
							k = 0 // all siblings share one counter: race
						}
						inbox.Set(c, p*branch+k, inbox.Get(c, p*branch+k)+up)
					}
					waiting.Set(c, v, w)
				})
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	total := 0
	for _, v := range treated.Unchecked() {
		total += v
	}
	fmt.Printf("villages: %d  steps: %d  treated: %d  time: %v\n",
		n, *steps, total, report.Duration)
	if report.RaceFree() {
		fmt.Println("race-free: certified for every schedule of this input")
		return
	}
	fmt.Printf("%d racy locations, e.g.:\n", len(report.Races))
	for i, r := range report.Races {
		if i == 5 {
			break
		}
		fmt.Println("  ", r)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// arrivals is a deterministic, well-mixed 0..2 patient count per clinic
// and step.
func arrivals(v, s int) int {
	h := uint64(v)*0x9e3779b97f4a7c15 + uint64(s)*0xbf58476d1ce4e5b9
	h ^= h >> 31
	h *= 0x94d049bb133111eb
	h ^= h >> 29
	return int(h % 3)
}
