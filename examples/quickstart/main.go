// Quickstart: detect a data race in an async/finish program, fix it, and
// certify the fix.
//
//	go run ./examples/quickstart
//
// SPD3 is sound and precise for a given input: the first run reports a
// real race (no false alarm is possible), and the second, quiet run
// certifies that no schedule of the fixed program can race.
package main

import (
	"fmt"
	"log"

	"spd3"
)

func main() {
	eng, err := spd3.New(spd3.Options{Workers: 4, Detector: spd3.SPD3})
	if err != nil {
		log.Fatal(err)
	}

	// Buggy version: every task accumulates into the same cell.
	total := spd3.NewArray[int](eng, "total", 1)
	report, err := eng.Run(func(c *spd3.Ctx) {
		c.FinishAsync(8, func(c *spd3.Ctx, i int) {
			total.Set(c, 0, total.Get(c, 0)+i) // read-modify-write race
		})
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- buggy version ---")
	for _, r := range report.Races {
		fmt.Println("race:", r)
	}
	if report.RaceFree() {
		log.Fatal("expected a race report")
	}

	// Fixed version: disjoint partial sums, reduced after the join.
	parts := spd3.NewArray[int](eng, "parts", 8)
	sum := 0
	report, err = eng.Run(func(c *spd3.Ctx) {
		c.FinishAsync(8, func(c *spd3.Ctx, i int) {
			parts.Set(c, i, i)
		})
		for i := 0; i < 8; i++ {
			sum += parts.Get(c, i)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- fixed version ---")
	fmt.Println("sum:", sum)
	if report.RaceFree() {
		fmt.Println("certified: no schedule of this input can race")
	} else {
		log.Fatalf("unexpected races: %v", report.Races)
	}
}
