// Fib runs the canonical Cilk program — recursive Fibonacci with
// spawn/sync — under race detection, demonstrating the paper's §2 claim
// that async/finish (and hence SPD3) subsumes Cilk's spawn/sync model.
//
// The -racy flag removes the sync before combining the two halves: the
// parent then reads the spawned child's slot while the child may still
// be writing it — the classic spawn/sync bug, which SPD3 pinpoints.
//
//	go run ./examples/fib -n 20
//	go run ./examples/fib -n 20 -racy
package main

import (
	"flag"
	"fmt"
	"log"
	"sync/atomic"

	"spd3"
)

func main() {
	n := flag.Int("n", 20, "fibonacci index (<= 26)")
	racy := flag.Bool("racy", false, "omit the sync before combining (a real spawn/sync bug)")
	flag.Parse()
	if *n < 0 || *n > 26 {
		log.Fatal("n must be in 0..26")
	}

	eng, err := spd3.New(spd3.Options{Workers: 4, Detector: spd3.SPD3})
	if err != nil {
		log.Fatal(err)
	}
	// One instrumented result slot per dynamic call — 2*fib(n+1)-1
	// calls — handed out by an atomic counter, so the detector watches
	// every parent/child hand-off.
	slots := spd3.NewArray[int](eng, "fib.slots", 2*fibSeq(*n+1))
	var next atomic.Int64 // slot 0 is the root's

	report, err := eng.Run(func(c *spd3.Ctx) {
		spd3.RunCilk(c, func(k *spd3.Cilk) {
			fib(k, slots, &next, *n, 0, *racy)
		})
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fib(%d) = %d (%v)\n", *n, slots.Unchecked()[0], report.Duration)
	if report.RaceFree() {
		fmt.Println("race-free: certified for every schedule of this input")
		return
	}
	fmt.Printf("%d racy locations, e.g. %v\n", len(report.Races), report.Races[0])
}

// fib computes fib(n) into slots[slot], spawning the n-1 half.
func fib(k *spd3.Cilk, slots *spd3.Array[int], next *atomic.Int64, n, slot int, racy bool) {
	c := k.Ctx()
	if n < 2 {
		slots.Set(c, slot, n)
		return
	}
	left := int(next.Add(2)) - 1
	right := left + 1
	k.Spawn(func(k *spd3.Cilk) { fib(k, slots, next, n-1, left, racy) })
	fib(k, slots, next, n-2, right, racy)
	if !racy {
		k.Sync() // join the spawned half before reading its slot
	}
	slots.Set(c, slot, slots.Get(c, left)+slots.Get(c, right))
}

// fibSeq is the plain sequential Fibonacci, used to size the slot array.
func fibSeq(n int) int {
	a, b := 0, 1
	for i := 0; i < n; i++ {
		a, b = b, a+b
	}
	return a
}
