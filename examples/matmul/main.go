// Matmul compares detectors on a dense matrix multiplication, the shape
// of the paper's Table 2 comparison: read-shared inputs A and B, disjoint
// writes to C, in both fine-grained (one task per row) and chunked (one
// task per worker) decompositions.
//
//	go run ./examples/matmul [-n 64] [-workers 4]
package main

import (
	"flag"
	"fmt"
	"log"

	"spd3"
)

func main() {
	n := flag.Int("n", 64, "matrix dimension")
	workers := flag.Int("workers", 4, "pool workers")
	flag.Parse()

	for _, det := range []spd3.Detector{spd3.None, spd3.SPD3, spd3.FastTrack, spd3.Eraser} {
		for _, chunked := range []bool{false, true} {
			elapsed, races, err := multiply(det, *n, *workers, chunked)
			if err != nil {
				log.Fatal(err)
			}
			mode := "fine   "
			if chunked {
				mode = "chunked"
			}
			fmt.Printf("%-10s %s  time=%-14v races=%d\n", det, mode, elapsed, races)
		}
	}
}

func multiply(det spd3.Detector, n, workers int, chunked bool) (string, int, error) {
	eng, err := spd3.New(spd3.Options{Workers: workers, Detector: det})
	if err != nil {
		return "", 0, err
	}
	a := spd3.NewMatrix[float64](eng, "A", n, n)
	b := spd3.NewMatrix[float64](eng, "B", n, n)
	cm := spd3.NewMatrix[float64](eng, "C", n, n)
	for i, raw := 0, a.Unchecked(); i < len(raw); i++ {
		raw[i] = float64(i%7) - 3
	}
	for i, raw := 0, b.Unchecked(); i < len(raw); i++ {
		raw[i] = float64(i%5) - 2
	}

	report, err := eng.Run(func(c *spd3.Ctx) {
		grain := 1
		if chunked {
			grain = (n + workers - 1) / workers
		}
		c.ParallelFor(0, n, grain, func(c *spd3.Ctx, i int) {
			for j := 0; j < n; j++ {
				s := 0.0
				for k := 0; k < n; k++ {
					s += a.Get(c, i, k) * b.Get(c, k, j)
				}
				cm.Set(c, i, j, s)
			}
		})
	})
	if err != nil {
		return "", 0, err
	}
	return report.Duration.String(), len(report.Races), nil
}
